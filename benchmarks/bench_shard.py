"""Shard-plane scaling and cross-request cache benchmarks.

One site pool (``REPRO_BENCH_SITES`` sites, default 96, spread over
distinct region buckets so the partition function actually shards it)
runs through three planes:

- ``shard_plane_inline``    -- ``ShardPlane(shards=1)``: the exact
  inline path, no worker processes; the single-shard baseline;
- ``shard_plane_processes`` -- ``ShardPlane(shards=4)``: four
  long-lived shard workers over pipes (skipped on hosts with fewer
  than 4 cores, where process scaling is not measurable);
- ``shard_cache_cold`` / ``shard_cache_warm`` -- a duplicate-heavy
  request sequence (85% of requests drawn from a hot eighth of the
  pool, mirroring the ``duplicate_heavy`` serving schedule) against a
  cold vs. a fully warm ``SiteResultCache``.

``test_shard_gate`` is the CI acceptance gate, in three parts:

1. **Byte-identity** -- inline plane, 4-shard plane, and warm-cache
   replay all match the serial engine exactly.
2. **Shard scaling >= ``MODEL_SCALING_FLOOR``x at 4 shards.** The
   per-chunk kernel times are *measured* (best-of-``GATE_RUNS`` per
   chunk, serial, in-process) and then replayed through the plane's
   greedy work-steal schedule in virtual time: an idle shard always
   takes the next pending chunk, so the modeled makespan at N shards
   is the classic least-loaded list schedule. The ratio
   ``makespan(1) / makespan(4)`` is machine-independent -- it divides
   out host speed entirely -- which lets the gate run on any builder,
   including single-core ones where real process scaling is
   physically impossible. On hosts with >= 4 cores the gate *also*
   times the real 4-shard plane against the single-shard plane
   (best-of-``GATE_RUNS`` each) and holds the measured wall-clock
   ratio to ``REAL_SCALING_FLOOR``x.
3. **Warm cache >= ``WARM_SPEEDUP``x over cold** on the
   duplicate-heavy sequence -- real wall-clock, best-of-``GATE_RUNS``
   (the cache is cleared before every cold round), single-core safe
   because a warm pass is pure content hashing.

Refresh the committed numbers with:

    PYTHONPATH=src REPRO_BENCH_SITES=48 python -m pytest \
        benchmarks/bench_shard.py --benchmark-json=benchmarks/BENCH_shard.json

(The JSON's ``shard_scaling_model`` entry carries the modeled
makespans in ``extra_info``; the cold/warm entries carry the cache
speedup directly in their stats.)
"""

import os
import time

import numpy as np

from repro.engine import Engine, EngineConfig
from repro.shard import DEFAULT_REGION_SPAN, ShardPlane, SiteResultCache
from repro.workloads.generator import BENCH_PROFILE, synthesize_site

from conftest import bench_sites

#: Kernel pinned so the committed baseline keeps measuring the same
#: plane as BENCH_serve.json; kernel routing is benched elsewhere.
POOL_KERNEL = "fft"
COMPLEXITIES = (0.5, 0.75, 1.0, 1.25, 1.5, 2.0)

#: Sites per shard chunk -- the plane's dispatch unit. Small enough
#: that a 48-site smoke pool still yields 12 chunks to schedule.
CHUNK_SITES = 4

#: Duplicate-heavy regime, mirroring workloads.serving duplicate_heavy:
#: this fraction of requests re-hit a hot eighth of the pool.
HOT_FRACTION = 0.85

GATE_RUNS = 3
GATE_SHARDS = 4
#: Modeled makespan ratio at 4 shards (measured chunk times replayed
#: through the work-steal schedule) must reach this floor.
MODEL_SCALING_FLOOR = 2.0
#: Real wall-clock ratio at 4 shards, gated only on hosts with >= 4
#: cores (CI runners qualify).
REAL_SCALING_FLOOR = 2.0
#: Warm-cache pass must beat the cold pass by this factor.
WARM_SPEEDUP = 3.0


def _engine_config():
    return EngineConfig(kernel=POOL_KERNEL, batch=CHUNK_SITES)


def _site_pool():
    rng = np.random.default_rng(2019)
    n = bench_sites()
    return [
        synthesize_site(rng, BENCH_PROFILE,
                        complexity=COMPLEXITIES[i % len(COMPLEXITIES)],
                        start=i * 4 * DEFAULT_REGION_SPAN)
        for i in range(n)
    ]


def _duplicate_heavy(sites):
    """Request sequence with an 85%-hot duplicate regime."""
    rng = np.random.default_rng(7)
    hot = sites[:max(1, len(sites) // 8)]
    return [
        hot[int(rng.integers(0, len(hot)))]
        if rng.random() < HOT_FRACTION else sites[i]
        for i in range(len(sites))
    ]


def _assert_identical(got, want):
    assert len(got) == len(want)
    for a, b in zip(got, want):
        assert a.same_outputs(b)
        np.testing.assert_array_equal(a.min_whd, b.min_whd)
        np.testing.assert_array_equal(a.new_pos, b.new_pos)


def _best_of(runs, func):
    best = float("inf")
    for _ in range(runs):
        start = time.perf_counter()
        func()
        best = min(best, time.perf_counter() - start)
    return best


def _chunk_durations(sites, runs=GATE_RUNS):
    """Measured serial kernel time per dispatch-sized chunk (best-of)."""
    chunks = [sites[i:i + CHUNK_SITES]
              for i in range(0, len(sites), CHUNK_SITES)]
    with Engine(_engine_config()) as engine:
        engine.run_sites(chunks[0])  # warm dispatch tables once
        return [
            _best_of(runs, lambda chunk=chunk: engine.run_sites(chunk))
            for chunk in chunks
        ]


def _greedy_makespan(durations, shards):
    """Least-loaded list schedule -- the virtual-time equivalent of the
    plane's dispatch (one inflight chunk per shard, idle shards steal
    whatever is pending next)."""
    loads = [0.0] * shards
    for duration in durations:
        loads[loads.index(min(loads))] += duration
    return max(loads)


def test_shard_plane_inline(benchmark):
    sites = _site_pool()
    with ShardPlane(_engine_config(), shards=1) as plane:
        results = benchmark(plane.run_sites, sites)
    assert len(results) == len(sites)


def test_shard_plane_processes(once, benchmark):
    if (os.cpu_count() or 1) < GATE_SHARDS:
        import pytest
        pytest.skip(f"needs >= {GATE_SHARDS} cores for process scaling")
    sites = _site_pool()
    with ShardPlane(_engine_config(), shards=GATE_SHARDS) as plane:
        plane.run_sites(sites)  # spawn + warm the workers off the clock
        results = once(plane.run_sites, sites)
        benchmark.extra_info["occupancy"] = plane.occupancy()
    assert len(results) == len(sites)


def test_shard_scaling_model(once, benchmark):
    """Measured chunk times replayed through the work-steal schedule;
    the modeled makespans land in the committed JSON's extra_info."""
    sites = _site_pool()
    durations = once(_chunk_durations, sites)
    makespan_1 = sum(durations)
    makespan_n = _greedy_makespan(durations, GATE_SHARDS)
    benchmark.extra_info["chunks"] = len(durations)
    benchmark.extra_info["makespan_1_ms"] = round(makespan_1 * 1e3, 3)
    benchmark.extra_info[f"makespan_{GATE_SHARDS}_ms"] = round(
        makespan_n * 1e3, 3)
    benchmark.extra_info[f"modeled_speedup_{GATE_SHARDS}"] = round(
        makespan_1 / makespan_n, 3)
    assert makespan_1 / makespan_n >= MODEL_SCALING_FLOOR


def test_shard_cache_cold(once, benchmark):
    sites = _site_pool()
    sequence = _duplicate_heavy(sites)
    cache = SiteResultCache.from_megabytes(64)
    with ShardPlane(_engine_config(), shards=1, cache=cache) as plane:

        def cold():
            cache.clear()
            return plane.run_sites(sequence)

        results = once(cold)
    benchmark.extra_info["cache"] = "cold (cleared before the pass)"
    assert len(results) == len(sequence)


def test_shard_cache_warm(once, benchmark):
    sites = _site_pool()
    sequence = _duplicate_heavy(sites)
    cache = SiteResultCache.from_megabytes(64)
    with ShardPlane(_engine_config(), shards=1, cache=cache) as plane:
        plane.run_sites(sequence)  # prime the cache off the clock
        results = once(plane.run_sites, sequence)
        counters = dict(plane.recovery_counters)
    benchmark.extra_info["cache"] = "warm (every site served from cache)"
    assert len(results) == len(sequence)
    assert counters.get("shard.cache_hits", 0) == len(sequence)


def test_shard_gate():
    """CI acceptance gate: exact merge at every shard count and cache
    state, modeled (and, with enough cores, measured) shard scaling,
    and the warm-cache speedup on the duplicate-heavy regime.

    Live relative comparisons -- every ratio divides two quantities
    measured in this process on this pool, so host speed drops out
    (docs/SHARDING.md)."""
    sites = _site_pool()
    sequence = _duplicate_heavy(sites)
    cores = os.cpu_count() or 1

    with Engine(_engine_config()) as serial:
        want = serial.run_sites(sites)
        want_sequence = serial.run_sites(sequence)

    # Part 1a: byte-identity through the real 4-shard process plane.
    with ShardPlane(_engine_config(), shards=GATE_SHARDS) as plane:
        _assert_identical(plane.run_sites(sites), want)
        real_shard_time = None
        if cores >= GATE_SHARDS:
            real_shard_time = _best_of(
                GATE_RUNS, lambda: plane.run_sites(sites))

    # Part 2: modeled makespan ratio from measured chunk times.
    durations = _chunk_durations(sites)
    makespan_1 = sum(durations)
    makespan_n = _greedy_makespan(durations, GATE_SHARDS)
    model_speedup = makespan_1 / makespan_n

    # Part 1b + 3: identity and timing through the caching inline plane.
    cache = SiteResultCache.from_megabytes(64)
    with ShardPlane(_engine_config(), shards=1, cache=cache) as plane:
        cache.clear()
        _assert_identical(plane.run_sites(sequence), want_sequence)  # cold
        _assert_identical(plane.run_sites(sequence), want_sequence)  # warm

        def cold():
            cache.clear()
            plane.run_sites(sequence)

        cold_time = _best_of(GATE_RUNS, cold)
        plane.run_sites(sequence)  # re-prime after the last clear
        warm_time = _best_of(GATE_RUNS, lambda: plane.run_sites(sequence))
        hit_rate = cache.hit_rate

    inline_time = None
    if real_shard_time is not None:
        with ShardPlane(_engine_config(), shards=1) as plane:
            plane.run_sites(sites)
            inline_time = _best_of(GATE_RUNS, lambda: plane.run_sites(sites))

    print(f"\nshard plane at {len(sites)} sites, "
          f"{len(durations)} chunks of {CHUNK_SITES}:")
    print(f"  modeled makespan  1 shard {makespan_1 * 1e3:7.1f} ms   "
          f"{GATE_SHARDS} shards {makespan_n * 1e3:7.1f} ms   "
          f"({model_speedup:.2f}x)")
    if inline_time is not None:
        print(f"  measured wall     1 shard {inline_time * 1e3:7.1f} ms   "
              f"{GATE_SHARDS} shards {real_shard_time * 1e3:7.1f} ms   "
              f"({inline_time / real_shard_time:.2f}x)")
    else:
        print(f"  measured wall     skipped ({cores} cores < "
              f"{GATE_SHARDS} shards)")
    print(f"  duplicate-heavy   cold {cold_time * 1e3:7.1f} ms   "
          f"warm {warm_time * 1e3:7.1f} ms   "
          f"({cold_time / warm_time:.1f}x, {hit_rate:.1%} hit rate)")

    assert model_speedup >= MODEL_SCALING_FLOOR, (
        f"modeled shard scaling below {MODEL_SCALING_FLOOR}x at "
        f"{GATE_SHARDS} shards: {model_speedup:.2f}x over "
        f"{len(durations)} measured chunks"
    )
    if inline_time is not None:
        assert real_shard_time * REAL_SCALING_FLOOR <= inline_time, (
            f"measured shard scaling below {REAL_SCALING_FLOOR}x: "
            f"{GATE_SHARDS} shards {real_shard_time:.3f}s vs 1 shard "
            f"{inline_time:.3f}s"
        )
    assert warm_time * WARM_SPEEDUP <= cold_time, (
        f"warm cache below {WARM_SPEEDUP}x over cold: warm "
        f"{warm_time:.4f}s vs cold {cold_time:.4f}s on the "
        f"duplicate-heavy sequence"
    )
