"""Model-validation benches: fabric contention, roofline, protocol sim.

These back the analytic model's assumptions with independent
simulations:

- the two-level memory-arbitration fabric shows concurrent buffer fills
  stretch bounded by the DDR beat budget (and fills are a sliver of
  compute anyway);
- the roofline places IR targets far right of the ridge: compute-bound,
  as Section II-C argues;
- the protocol-level system simulation (real MMIO + router handshakes)
  reproduces the abstract scheduler's makespan.
"""

import numpy as np

from repro.core.stepped_system import SteppedIRSystem
from repro.core.system import AcceleratedIRSystem, SystemConfig
from repro.experiments.reporting import format_table
from repro.hw.fabric import DDR_BEATS_PER_CYCLE, fill_stretch_for_sites
from repro.perf.roofline import RooflineModel, summarize
from repro.workloads.generator import BENCH_PROFILE, REAL_PROFILE, synthesize_site


def _sites(count, profile=BENCH_PROFILE, seed=3):
    rng = np.random.default_rng(seed)
    return [synthesize_site(rng, profile) for _ in range(count)]


def test_fabric_fill_contention(once):
    sites = _sites(32)
    stretch = once(fill_stretch_for_sites, sites)
    print(f"\nworst fill stretch, 32 concurrent units on one DDR channel: "
          f"{stretch:.2f}x (bound {32 / DDR_BEATS_PER_CYCLE:.0f}x)")
    assert 1.0 <= stretch <= 32 / DDR_BEATS_PER_CYCLE + 1.0


def test_roofline_compute_bound(once):
    model = RooflineModel()

    def place_all():
        points = [model.place_site(site) for site in _sites(8)]
        points += [model.place_site(site)
                   for site in _sites(3, REAL_PROFILE, seed=9)]
        return points

    points = once(place_all)
    result = summarize(points)
    print()
    print(format_table(
        ["site", "comparisons/byte", "bound"],
        [[p.name, f"{p.arithmetic_intensity:.0f}",
          "compute" if p.compute_bound else "memory"] for p in points[:6]],
    ))
    print(f"ridge intensity: {model.ridge_intensity():.1f} comparisons/byte; "
          f"{result['compute_bound_fraction']:.0%} of sites compute-bound")
    assert result["compute_bound_fraction"] == 1.0


def test_protocol_sim_validates_scheduler(once):
    sites = _sites(24, seed=11)
    config = SystemConfig.iracc()

    def both():
        stepped = SteppedIRSystem(config).run(sites)
        analytic = AcceleratedIRSystem(config).run(sites)
        return stepped.makespan_cycles, config.clock.seconds_to_cycles(
            analytic.total_seconds
        )

    stepped_cycles, analytic_cycles = once(both)
    ratio = stepped_cycles / analytic_cycles
    print(f"\nprotocol-level makespan / analytic makespan: {ratio:.3f}")
    assert 0.8 <= ratio <= 1.25
