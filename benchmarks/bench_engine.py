"""Execution-engine benchmarks: serial kernel vs batched vs multiprocess.

One site pool (``REPRO_BENCH_SITES`` sites, default 96) is realigned
four ways:

- ``serial``    -- the scalar/vectorized per-site kernel, the baseline
  every speedup in docs/PERFORMANCE.md is quoted against;
- ``batched``   -- the FFT-batched kernel with the pre-alignment filter,
  in-process (workers=1);
- ``no_prefilter`` -- the batched kernel alone, isolating how much of
  the win is the filter vs the tensorized evaluation;
- ``engine_pool``  -- the full Engine at 4 workers (pool created and
  warmed in setup, so the measurement sees steady-state dispatch, not
  fork cost).

``test_batched_beats_serial_throughput`` turns the headline claim into
an assertion so CI fails if the engine regresses below the serial path.
Refresh the committed numbers with:

    PYTHONPATH=src REPRO_BENCH_SITES=48 python -m pytest \
        benchmarks/bench_engine.py --benchmark-json=benchmarks/BENCH_engine.json
"""

import time

import numpy as np
import pytest

from repro.engine import Engine, EngineConfig, realign_site_batched
from repro.realign.whd import realign_site
from repro.workloads.generator import BENCH_PROFILE, synthesize_site

from conftest import bench_sites

POOL_WORKERS = 4
POOL_BATCH = 12
COMPLEXITIES = (0.5, 0.75, 1.0, 1.25, 1.5, 2.0)


def _site_pool():
    rng = np.random.default_rng(2019)
    n = bench_sites()
    return [
        synthesize_site(rng, BENCH_PROFILE,
                        complexity=COMPLEXITIES[i % len(COMPLEXITIES)])
        for i in range(n)
    ]


def _serial(sites):
    return [realign_site(site) for site in sites]


def test_engine_serial_baseline(benchmark):
    sites = _site_pool()
    results = benchmark(_serial, sites)
    assert len(results) == len(sites)


def test_engine_batched_inprocess(benchmark):
    sites = _site_pool()
    results = benchmark(lambda: [realign_site_batched(s) for s in sites])
    for got, want in zip(results, _serial(sites)):
        assert got.same_outputs(want)


def test_engine_batched_no_prefilter(benchmark):
    sites = _site_pool()
    results = benchmark(
        lambda: [realign_site_batched(s, prefilter=False) for s in sites]
    )
    assert len(results) == len(sites)


def test_engine_multiprocess_pool(benchmark):
    sites = _site_pool()
    # kernel pinned so the committed baseline keeps measuring the
    # FFT-batched plane; kernel routing is benched in bench_kernels.py.
    with Engine(EngineConfig(workers=POOL_WORKERS, batch=POOL_BATCH,
                             kernel="fft")) as eng:
        eng.run_sites(sites[: POOL_BATCH * POOL_WORKERS])  # warm the pool
        results = benchmark(eng.run_sites, sites)
    for got, want in zip(results, _serial(sites)):
        assert got.same_outputs(want)


def test_batched_beats_serial_throughput():
    """The engine acceptance gate: batched must out-run serial on the
    same pool. Timed with perf_counter inside one test so the ratio is
    apples-to-apples regardless of pytest-benchmark calibration."""
    sites = _site_pool()
    _serial(sites)  # touch caches for both contenders
    [realign_site_batched(s) for s in sites]

    start = time.perf_counter()
    serial = _serial(sites)
    serial_elapsed = time.perf_counter() - start

    start = time.perf_counter()
    batched = [realign_site_batched(s) for s in sites]
    batched_elapsed = time.perf_counter() - start

    for got, want in zip(batched, serial):
        assert got.same_outputs(want)
    assert batched_elapsed < serial_elapsed, (
        f"batched engine slower than serial: {batched_elapsed:.3f}s vs "
        f"{serial_elapsed:.3f}s over {len(sites)} sites"
    )
    print(f"\nbatched speedup over serial at {len(sites)} sites: "
          f"{serial_elapsed / batched_elapsed:.2f}x")
