"""Figure 7: synchronous vs asynchronous scheduling on the toy workload."""

from repro.experiments import figure7


def test_figure7_scheduling(once):
    outcome = once(figure7.main)
    assert 6.0 <= outcome.t3_over_t1 <= 10.0  # paper: "about 8 times"
    assert outcome.async_speedup > 1.3
    assert outcome.async_.utilization > outcome.sync.utilization
