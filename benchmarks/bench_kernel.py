"""Microbenchmarks of the WHD kernel itself (repeatable timing runs).

These use pytest-benchmark's normal repetition (unlike the
workload-scale ``once`` benches) to give stable figures for the two
kernel forms and the simulator's analytic mode.
"""

import numpy as np

from repro.core.accelerator import IRUnit, UnitConfig
from repro.core.hdc import HammingDistanceCalculator
from repro.genomics.sequence import seq_to_array
from repro.realign.whd import realign_site, whd_profile
from repro.workloads.generator import BENCH_PROFILE, synthesize_site


def _pair(m=1024, n=200, seed=0):
    rng = np.random.default_rng(seed)
    codes = np.frombuffer(b"ACGT", dtype=np.uint8)
    cons = codes[rng.integers(0, 4, m)]
    read = np.concatenate([cons[100:100 + n // 2],
                           codes[rng.integers(0, 4, n - n // 2)]])
    quals = rng.integers(20, 41, n).astype(np.uint8)
    return cons, read, quals


def test_whd_profile_kernel(benchmark):
    cons, read, quals = _pair()
    profile = benchmark(whd_profile, cons, read, quals)
    assert profile.shape == (1024 - 200 + 1,)


def test_hdc_analytic_parallel(benchmark):
    cons, read, quals = _pair()
    hdc = HammingDistanceCalculator(lanes=32, prune=True)
    result = benchmark(hdc.compute_pair, cons, read, quals)
    assert result.comparisons <= result.unpruned_comparisons


def test_hdc_analytic_scalar(benchmark):
    cons, read, quals = _pair()
    hdc = HammingDistanceCalculator(lanes=1, prune=True)
    result = benchmark(hdc.compute_pair, cons, read, quals)
    assert result.cycles > 0


def test_site_through_unit(benchmark):
    site = synthesize_site(np.random.default_rng(1), BENCH_PROFILE)
    unit = IRUnit(UnitConfig(lanes=32))
    result = benchmark(unit.run_site, site)
    assert result.matches(realign_site(site))
