"""Figure 2: execution-time breakdown of the three analysis pipelines."""

from repro.experiments import figure2


def test_figure2_breakdown(once):
    outcome = once(figure2.main)
    shares = outcome.pipeline_shares
    assert shares["primary_alignment"] < 0.15  # paper: "less than 15%"
    assert 0.55 < shares["alignment_refinement"] < 0.62  # "roughly 60%"
    assert 0.30 < outcome.ir_total_share < 0.37  # "roughly one third"
    # The executed refinement pipeline agrees on the dominant stage.
    assert outcome.measured_ir_fraction == max(
        outcome.measured.fraction(stage.stage)
        for stage in outcome.measured.stages
    )
