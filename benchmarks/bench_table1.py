"""Table I: the five RoCC accelerator instructions."""

from repro.experiments import tables


def test_table1_isa(once):
    outcome = once(tables.run_table1)
    assert outcome.roundtrip_ok
    assert len(outcome.commands) == 5
    assert outcome.commands_for_32_consensuses == 40
