"""Section III-A: computation pruning eliminates >50% of the work."""

from repro.experiments import microarch


def test_pruning_and_resources(once):
    outcome = once(microarch.main)
    assert outcome.pruned_fraction > 0.50  # paper: "> 50%"
    assert 0.0 < outcome.datapath_pruned_fraction < outcome.pruned_fraction + 0.3
