"""Figure 9 (right): dollars to run INDEL realignment on Ch1-22.

Paper bars: GATK3 $28, ADAM $14.5, IR ACC $0.90 -- 32x / 17x cost
efficiency. The cost extrapolation uses the measured gmean speedup over
the full-scale census anchor (42.1 h of GATK3 at $0.665/hr).
"""

from conftest import bench_replication, bench_sites

from repro.experiments import figure9
from repro.perf.cost import cost_efficiency


def test_figure9_cost(once):
    outcome = once(
        figure9.run,
        sites_per_chromosome=bench_sites(),
        replication=bench_replication(),
    )
    costs = outcome.costs
    print()
    for name, report in costs.items():
        print(f"{name:8s} {report.instance.name:12s} "
              f"{report.hours:8.2f} h  ${report.dollars:.2f}")
    assert abs(costs["GATK3"].dollars - 28.0) < 0.5
    assert abs(costs["ADAM"].dollars - 14.5) < 0.5
    assert costs["IR ACC"].dollars < 1.5  # paper: $0.90
    assert cost_efficiency(costs["GATK3"], costs["IR ACC"]) > 18
    assert cost_efficiency(costs["ADAM"], costs["IR ACC"]) > 9
