"""Figure 9 (left): per-chromosome speedup over GATK3.

Regenerates the paper's headline result -- IR ACC at 66.7x-115.4x over
8-thread GATK3 (gmean 81.3x) across chromosomes 1-22, with the
IRAcc-TaskP and IRAcc-TaskP-Async design points on the representative
subset.
"""

from conftest import bench_replication, bench_sites

from repro.experiments import figure9


def test_figure9_speedup(once):
    outcome = once(figure9.main, bench_sites(), bench_replication())
    lo, hi = outcome.speedup_range
    # Shape assertions: who wins, by roughly what factor.
    assert outcome.gmean_speedup > 50
    assert lo > 40
    assert hi < 160
    taskp = outcome.design_gmean("IRAcc-TaskP")
    async_ = outcome.design_gmean("IRAcc-TaskP-Async")
    assert 0.5 < taskp < 3.0  # paper: 0.7-1.3x
    assert async_ > 2 * taskp  # paper: ~6.2x gain
