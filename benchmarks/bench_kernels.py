"""Kernel-dispatch benchmarks: vector vs FFT vs bitpack vs native vs auto.

One pool per site regime runs through every dispatchable kernel (the
scalar transcription baseline is excluded -- it is orders of magnitude
off on these shapes and its asymptote is already pinned by the
calibration fit in :mod:`repro.engine.autotune`):

- ``mixed``       -- ``BENCH_PROFILE`` sites across the standard
  complexity ladder: ragged read lengths and generous window slack,
  the FFT kernel's home regime;
- ``uniform250``  -- fixed 250 bp reads with ~4 bp of window slack:
  only a handful of offsets are in range, so the FFT kernel wastes its
  padded transform while the SWAR kernel screens exactly those
  offsets. This is the Illumina-like fixed-read-length regime where
  bitpack wins;
- ``short64deep`` -- fixed 64 bp reads, deep pileup, tight window: the
  same few-offsets structure at a smaller word count.

``test_kernels_gate`` is the CI acceptance gate, asserting the three
claims docs/PERFORMANCE.md makes about dispatch:

1. on every regime, ``auto`` finishes within ``AUTO_TOLERANCE`` of the
   best fixed kernel (the router must track the per-shape winner);
2. on at least one fixed-read-length regime, ``bitpack`` strictly
   beats ``fft`` (the regime the SWAR kernel was built for);
3. when a compiled backend is available, ``native`` runs at least as
   fast as ``bitpack`` on at least one fixed-read-length regime (the
   compiled tier must actually buy something over the interpreted SWAR
   kernel it replaces). The native backend is JIT-warmed before any
   timing, so one-time compilation is excluded from every round; on
   hosts with no backend at all this check is skipped -- ``native`` is
   then bitpack plus a fallback branch, and gating on that margin
   would gate on noise.

A failing check does not block immediately: the gate re-measures at
escalating best-of counts (``GATE_ROUNDS``) and merges per-kernel
bests, so only a slowdown that persists across every round -- a real
regression, not a noisy co-tenant -- fails CI.

Refresh the committed numbers with:

    PYTHONPATH=src REPRO_BENCH_SITES=48 python -m pytest \
        benchmarks/bench_kernels.py --benchmark-json=benchmarks/BENCH_kernels.json
"""

import gc
import os
import time

import numpy as np
import pytest

from repro.engine.autotune import dispatch_realign
from repro.engine.native import native_available, warmup_native
from repro.workloads.generator import (
    BENCH_PROFILE,
    SiteProfile,
    synthesize_site,
)

from conftest import bench_sites

#: Kernels the pools run through; ``auto`` is the calibrated router.
BENCHED_KERNELS = ("vector", "fft", "bitpack", "native", "auto")
COMPLEXITIES = (0.5, 0.75, 1.0, 1.25, 1.5, 2.0)
SCENARIOS = ("mixed", "uniform250", "short64deep")

#: Auto-dispatch gate allowance: ``auto`` must finish within this
#: factor of the best fixed kernel on every regime. The measured
#: dispatch cost (feature extraction + profile lookup) is ~40 us per
#: site, which is <5% on the ms-scale sites benched here; the rest of
#: the margin absorbs shared-runner jitter, which on sub-100 ms pool
#: runs routinely reaches 20%+ even under best-of-N sampling.
AUTO_TOLERANCE = 1.25

#: Measurement escalation ladder: best-of counts per gate round. The
#: first round is cheap; if any gate check fails on its numbers, the
#: gate re-measures at the next rung and merges per-kernel bests before
#: asserting. A transient co-tenant spike on a shared runner therefore
#: cannot fail CI on its own -- only a slowdown that persists across
#: every round (a real regression) blocks the PR.
GATE_ROUNDS = (3, 6, 9)

#: Fixed-read-length regimes. ``read_tail_sigma=0`` pins every read to
#: the profile length, and the small window slack leaves only a few
#: valid offsets per pair -- the structure that favours the SWAR
#: screen over a padded full-correlation FFT.
UNIFORM250 = SiteProfile(
    name="uniform250",
    mean_consensuses=10.0,
    mean_reads=128.0,
    read_length_range=(250, 250),
    window_slack_mean=4.0,
    read_tail_sigma=0.0,
)
SHORT64DEEP = SiteProfile(
    name="short64deep",
    mean_consensuses=8.0,
    mean_reads=160.0,
    read_length_range=(64, 64),
    window_slack_mean=3.0,
    read_tail_sigma=0.0,
)

_pools = {}


def _site_pool(scenario):
    """Deterministic site pool for one regime (built once per run)."""
    if scenario not in _pools:
        rng = np.random.default_rng(2025)
        n = bench_sites()
        if scenario == "mixed":
            sites = [
                synthesize_site(rng, BENCH_PROFILE,
                                complexity=COMPLEXITIES[i % len(COMPLEXITIES)])
                for i in range(max(n // 2, 8))
            ]
        elif scenario == "uniform250":
            sites = [synthesize_site(rng, UNIFORM250)
                     for _ in range(max(n // 8, 6))]
        elif scenario == "short64deep":
            sites = [synthesize_site(rng, SHORT64DEEP)
                     for _ in range(max(n // 8, 6))]
        else:
            raise ValueError(scenario)
        _pools[scenario] = sites
    return _pools[scenario]


def _run(scenario, kernel):
    return [dispatch_realign(site, kernel=kernel)
            for site in _site_pool(scenario)]


@pytest.mark.parametrize("kernel", BENCHED_KERNELS)
@pytest.mark.parametrize("scenario", SCENARIOS)
def test_kernels(once, scenario, kernel):
    _site_pool(scenario)  # build outside the measurement
    results = once(_run, scenario, kernel)
    assert len(results) == len(_site_pool(scenario))


def _interleaved_best_of(runs, scenario, kernels):
    """Best-of-``runs`` per kernel, measured round-robin.

    Interleaving the kernels inside each round (rather than timing one
    kernel's N runs back to back) spreads slow drift -- GC pressure
    from earlier benchmarks, thermal throttling, a noisy co-tenant --
    evenly across contenders, so a drift window cannot make one kernel
    look structurally slower. Each run is preceded by a collection so
    no kernel is billed for the previous one's garbage."""
    best = {kernel: float("inf") for kernel in kernels}
    for _ in range(runs):
        for kernel in kernels:
            gc.collect()
            start = time.perf_counter()
            _run(scenario, kernel)
            best[kernel] = min(best[kernel],
                               time.perf_counter() - start)
    return best


def _gate_failures(times):
    """Evaluate both gate claims on merged bests; return messages.

    1. ``auto`` within ``AUTO_TOLERANCE`` of the best fixed kernel on
       every regime (the router tracks the per-shape winner).
    2. ``bitpack`` strictly beats ``fft`` on at least one
       fixed-read-length regime -- the SWAR kernel's raison d'etre: on
       fixed-read-length sites with tiny window slack, screening only
       the in-range offsets beats a padded full correlation. One
       winning regime is the claim (docs/PERFORMANCE.md); requiring
       both to win every run would gate on scheduler noise at these ms
       scales.
    3. with a compiled backend available, ``native`` runs at least as
       fast as ``bitpack`` on at least one fixed-read-length regime --
       same single-regime logic as check 2. Skipped without a backend
       (native is then bitpack behind a fallback branch).
    """
    failures = []
    for scenario in SCENARIOS:
        fixed = {k: t for k, t in times[scenario].items() if k != "auto"}
        winner = min(fixed, key=fixed.get)
        if times[scenario]["auto"] > fixed[winner] * AUTO_TOLERANCE:
            failures.append(
                f"auto dispatch missed the {scenario} winner ({winner}): "
                f"auto {times[scenario]['auto']:.3f}s vs "
                f"{fixed[winner]:.3f}s * {AUTO_TOLERANCE}"
            )
    ratios = {
        s: times[s]["bitpack"] / times[s]["fft"]
        for s in ("uniform250", "short64deep")
    }
    if min(ratios.values()) >= 1.0:
        failures.append(
            "bitpack no longer beats fft on any fixed-read-length "
            f"regime: bitpack/fft ratios {ratios}"
        )
    if native_available():
        native_ratios = {
            s: times[s]["native"] / times[s]["bitpack"]
            for s in ("uniform250", "short64deep")
        }
        if min(native_ratios.values()) > 1.0:
            failures.append(
                "native no longer matches bitpack on any "
                "fixed-read-length regime: native/bitpack ratios "
                f"{native_ratios}"
            )
    return failures


def test_kernels_gate():
    """CI acceptance gate: auto tracks the per-regime winner, and the
    SWAR kernel beats the FFT kernel on a fixed-read-length regime.

    Timings are interleaved best-of-N (noise is one-sided) with the
    documented ``AUTO_TOLERANCE`` on the auto comparison, escalating
    through ``GATE_ROUNDS`` on failure so shared-runner interference
    has to persist across every round to block a PR. The gate is about
    *auto's routing*, so the ``REPRO_KERNEL`` override -- which would
    silently turn auto into a fixed kernel -- is cleared for its
    duration."""
    override = os.environ.pop("REPRO_KERNEL", None)
    try:
        # One-time JIT / shared-library compilation happens here, not
        # inside any timed round.
        warmup_native()
        # Pin exactness once (and warm every kernel) before timing.
        for scenario in SCENARIOS:
            want = _run(scenario, "vector")
            for kernel in ("fft", "bitpack", "native", "auto"):
                for got, ref in zip(_run(scenario, kernel), want):
                    assert got.same_outputs(ref), (scenario, kernel)

        times = {s: {k: float("inf") for k in BENCHED_KERNELS}
                 for s in SCENARIOS}
        failures = []
        print()
        for round_no, runs in enumerate(GATE_ROUNDS, start=1):
            for scenario in SCENARIOS:
                round_best = _interleaved_best_of(
                    runs, scenario, BENCHED_KERNELS
                )
                for kernel, elapsed in round_best.items():
                    times[scenario][kernel] = min(
                        times[scenario][kernel], elapsed
                    )
                fixed = {k: t for k, t in times[scenario].items()
                         if k != "auto"}
                row = "  ".join(f"{k} {times[scenario][k] * 1e3:7.1f} ms"
                                for k in BENCHED_KERNELS)
                print(f"  {scenario:<12} ({len(_site_pool(scenario)):2d} "
                      f"sites)  {row}  best fixed: "
                      f"{min(fixed, key=fixed.get)}")
            failures = _gate_failures(times)
            if not failures:
                break
            if round_no < len(GATE_ROUNDS):
                print(f"  gate round {round_no} (best-of-{runs}) failed "
                      f"{len(failures)} check(s); escalating to "
                      f"best-of-{GATE_ROUNDS[round_no]}")
        assert not failures, "\n".join(failures)
    finally:
        if override is not None:
            os.environ["REPRO_KERNEL"] = override
