"""Table II: machine configurations (and the full tables printout)."""

from repro.experiments import tables


def test_table2_machines(once):
    outcome = once(tables.main)
    t2 = tables.run_table2()
    assert t2.f1.price_per_hour == 1.65
    assert t2.r3.price_per_hour == 0.665
    assert t2.f1.fpga_memory_gib == 64.0
