"""Section V-B: IR ACC versus ADAM (paper: 30.2x-69.1x, avg 41.4x)."""

from conftest import bench_replication

from repro.experiments import comparisons


def test_adam_comparison(once):
    outcome = once(
        comparisons.run,
        sites_per_chromosome=48,
        replication=bench_replication(),
        chromosomes=("2", "9", "21"),
    )
    assert 15 < outcome.adam_gmean < 80  # paper avg: 41.4x
    assert all(s > 10 for s in outcome.adam_speedups)
