"""Figure 4: the worked WHD example (every number pinned)."""

from repro.experiments import figure4


def test_figure4_worked_example(once):
    outcome = once(figure4.main)
    assert outcome.matches_paper
