"""Request plane vs direct engine: serving-overhead benchmarks.

One site pool (``REPRO_BENCH_SITES`` sites, default 96) runs twice
over the same inline engine:

- ``serve_direct_engine``  -- one ``Engine.run_sites`` call: the
  batch-CLI cost of the workload, no request plane;
- ``serve_request_plane``  -- the same sites split into many
  concurrent jobs submitted through ``RealignmentService``: admission
  control, the coalescing batcher, executor dispatch, per-request
  latency accounting.

``test_serve_gate`` is the CI acceptance gate: the request plane's
wall-clock over the full pool must stay within ``SERVE_TOLERANCE`` of
the direct engine call, results must be byte-identical, and the
snapshot must report a non-degenerate p99. The tolerance is wider
than the streaming gate's: the serving path adds an event loop, a
future per request, and a thread hop per dispatch -- real, bounded
overhead that the gate keeps bounded rather than pretends away.
Refresh the committed numbers with:

    PYTHONPATH=src REPRO_BENCH_SITES=48 python -m pytest \
        benchmarks/bench_serve.py --benchmark-json=benchmarks/BENCH_serve.json
"""

import asyncio
import time

import numpy as np

from repro.engine import Engine, EngineConfig
from repro.serve.request import ServiceConfig
from repro.serve.service import RealignmentService
from repro.workloads.generator import BENCH_PROFILE, synthesize_site

from conftest import bench_sites

#: Kernel pinned so the committed baseline keeps measuring the same
#: plane as BENCH_stream.json; kernel routing is benched elsewhere.
POOL_KERNEL = "fft"
COMPLEXITIES = (0.5, 0.75, 1.0, 1.25, 1.5, 2.0)

#: Sites per request job -- small on purpose: many concurrent small
#: requests is the regime the coalescing batcher exists for.
JOB_SITES = 4
SERVICE_CONFIG = ServiceConfig(
    max_queue_sites=4096,       # admission never the bottleneck here
    coalesce_sites=16,
    coalesce_wait_ms=1.0,
)

#: Serving-gate tolerance: the request plane must finish the full
#: pool within this factor of one direct engine call on the same
#: sites. Same best-of-N reasoning as bench_stream's gate, plus a
#: wider allowance for the serving machinery itself (event loop,
#: futures, single-thread executor hop, latency bookkeeping).
GATE_RUNS = 3
SERVE_TOLERANCE = 1.35


def _site_pool():
    rng = np.random.default_rng(2019)
    n = bench_sites()
    return [
        synthesize_site(rng, BENCH_PROFILE,
                        complexity=COMPLEXITIES[i % len(COMPLEXITIES)])
        for i in range(n)
    ]


def _jobs(sites):
    return [sites[i:i + JOB_SITES] for i in range(0, len(sites), JOB_SITES)]


def _run_service(engine, jobs):
    """Submit every job concurrently; return (flat results, snapshot)."""

    async def drive():
        service = RealignmentService(engine, SERVICE_CONFIG)
        await service.start()
        slices = await asyncio.gather(*(
            service.submit_sites(job, tenant=f"t{i % 4}")
            for i, job in enumerate(jobs)
        ))
        snapshot = service.snapshot()
        await service.close()
        return [r for s in slices for r in s], snapshot

    return asyncio.run(drive())


def test_serve_direct_engine(benchmark):
    sites = _site_pool()
    with Engine(EngineConfig(kernel=POOL_KERNEL)) as engine:
        results = benchmark(engine.run_sites, sites)
    assert len(results) == len(sites)


def test_serve_request_plane(benchmark):
    sites = _site_pool()
    jobs = _jobs(sites)
    with Engine(EngineConfig(kernel=POOL_KERNEL)) as engine:
        results, snapshot = benchmark(_run_service, engine, jobs)
    assert len(results) == len(sites)
    assert snapshot.counters["serve.requests_completed"] == len(jobs)
    assert snapshot.latency["p99_ms"] > 0.0


def _best_of(runs, func):
    best = float("inf")
    for _ in range(runs):
        start = time.perf_counter()
        func()
        best = min(best, time.perf_counter() - start)
    return best


def test_serve_gate():
    """CI acceptance gate: bounded serving overhead, exact results,
    non-degenerate latency reporting.

    Live relative comparison -- both paths timed best-of-``GATE_RUNS``
    in one process over one site pool and one engine, so host speed
    divides out (docs/SERVING.md)."""
    sites = _site_pool()
    jobs = _jobs(sites)
    with Engine(EngineConfig(kernel=POOL_KERNEL)) as engine:
        # Byte-identity first: a coalesced batch of strangers must
        # realign every site exactly as the direct call does.
        want = engine.run_sites(sites)
        got, snapshot = _run_service(engine, jobs)
        assert len(got) == len(want)
        for a, b in zip(got, want):
            assert a.same_outputs(b)

        direct_time = _best_of(GATE_RUNS, lambda: engine.run_sites(sites))
        serve_best = [None]

        def serve_once():
            serve_best[0] = _run_service(engine, jobs)

        serve_time = _best_of(GATE_RUNS, serve_once)
        _results, snapshot = serve_best[0]

    latency = snapshot.latency
    throughput = len(sites) / serve_time
    print(f"\nrequest plane vs direct engine at {len(sites)} sites, "
          f"{len(jobs)} jobs of {JOB_SITES}:")
    print(f"  wall-clock  direct {direct_time * 1e3:7.1f} ms   "
          f"served {serve_time * 1e3:7.1f} ms   "
          f"({serve_time / direct_time:.2f}x)")
    print(f"  throughput  {throughput:7.1f} sites/s served")
    print(f"  latency     p50 {latency['p50_ms']:.1f} ms / "
          f"p95 {latency['p95_ms']:.1f} ms / p99 {latency['p99_ms']:.1f} ms")
    print(f"  saturation  {snapshot.saturation:.1%}")

    assert serve_time <= direct_time * SERVE_TOLERANCE, (
        f"request plane overhead past {SERVE_TOLERANCE}x: "
        f"{serve_time:.3f}s vs direct {direct_time:.3f}s "
        f"over {len(sites)} sites"
    )
    assert latency["p99_ms"] >= latency["p50_ms"] > 0.0
    assert snapshot.counters["serve.requests_completed"] == len(jobs)
