"""Streaming vs barrier engine: throughput and peak-memory benchmarks.

One site pool (``REPRO_BENCH_SITES`` sites, default 96) runs through
the barrier ``Engine`` and the ``StreamingEngine`` at the same worker
count:

- ``barrier_pool``  -- ``Engine.run_sites`` at 4 workers: submit all,
  block, merge; peak memory holds every chunk's results at once;
- ``stream_pool``   -- ``StreamingEngine.stream_sites`` at 4 workers,
  queue depth 1: bounded in-flight window, incremental in-order merge,
  each result consumed and dropped as it is yielded.

``test_stream_gate`` is the CI acceptance gate: the streaming plane
must not regress throughput against the barrier engine and must hold
strictly less peak traced-heap at 48+ sites (the committed smoke
scale). Memory is measured with ``tracemalloc`` -- heap allocations
only, so the conservative ``use_shmem=False`` transport is gated (its
payload buffers live on the traced heap; shared-memory arenas would
only lower what the tracer sees). Refresh the committed numbers with:

    PYTHONPATH=src REPRO_BENCH_SITES=48 python -m pytest \
        benchmarks/bench_stream.py --benchmark-json=benchmarks/BENCH_stream.json
"""

import time
import tracemalloc

import numpy as np

from repro.engine import Engine, EngineConfig, StreamingEngine
from repro.workloads.generator import BENCH_PROFILE, synthesize_site

from conftest import bench_sites

POOL_WORKERS = 4
POOL_BATCH = 4
QUEUE_DEPTH = 1
#: Kernel pinned so the committed baseline keeps measuring the
#: FFT-batched plane; kernel routing is benched in bench_kernels.py.
POOL_KERNEL = "fft"
COMPLEXITIES = (0.5, 0.75, 1.0, 1.25, 1.5, 2.0)

#: Throughput-gate tolerance: the streaming plane must finish within
#: this factor of the barrier engine's best time. The two planes run
#: the identical kernel over identical chunks; the margin only absorbs
#: scheduler/timer noise on loaded CI hosts, not a real regression --
#: at the 48-site smoke scale a single run is ~100 ms, where shared
#: runners routinely jitter by 10%+, so the gate combines best-of-N
#: sampling (noise only ever slows a run down, so the minimum
#: converges on the true cost) with this allowance on top.
GATE_RUNS = 3
THROUGHPUT_TOLERANCE = 1.10

#: Recovery-gate tolerance: with worker recovery armed but no faults
#: injected, the resilient dispatch path (watchdog thread + futures +
#: per-chunk deadlines) must stay within this factor of the plain
#: pool. Same best-of-N + allowance reasoning as the throughput gate.
RECOVERY_TOLERANCE = 1.10


def _site_pool():
    rng = np.random.default_rng(2019)
    n = bench_sites()
    return [
        synthesize_site(rng, BENCH_PROFILE,
                        complexity=COMPLEXITIES[i % len(COMPLEXITIES)])
        for i in range(n)
    ]


def _consume_stream(engine, sites):
    """Drain the stream without holding results -- the streaming
    consumer shape (each result inspected, then dropped)."""
    realigned = 0
    for result in engine.stream_sites(sites):
        realigned += result.num_realigned
    return realigned


def test_stream_barrier_pool(benchmark):
    sites = _site_pool()
    with Engine(EngineConfig(workers=POOL_WORKERS, batch=POOL_BATCH,
                             kernel=POOL_KERNEL)) as eng:
        eng.run_sites(sites[: POOL_BATCH * POOL_WORKERS])  # warm the pool
        results = benchmark(eng.run_sites, sites)
    assert len(results) == len(sites)


def test_stream_streaming_pool(benchmark):
    sites = _site_pool()
    with StreamingEngine(
        EngineConfig(workers=POOL_WORKERS, batch=POOL_BATCH,
                     kernel=POOL_KERNEL),
        queue_depth=QUEUE_DEPTH,
    ) as eng:
        eng.run_sites(sites[: POOL_BATCH * POOL_WORKERS])  # warm the pool
        realigned = benchmark(_consume_stream, eng, sites)
    assert realigned >= 0
    assert eng.stream_stats["stream.chunks"] > 0


def _best_of(runs, func):
    best = float("inf")
    for _ in range(runs):
        start = time.perf_counter()
        func()
        best = min(best, time.perf_counter() - start)
    return best


def _peak_traced_bytes(func, runs=1):
    """Minimum peak traced-heap over ``runs`` executions of ``func``.

    A single run's peak can be inflated by incidental allocations
    (pool pickling buffers still queued, GC timing), so the gate takes
    the best of N: transient noise only ever raises a peak, never
    lowers it, so the minimum is the stable per-plane floor.
    """
    best = float("inf")
    for _ in range(runs):
        tracemalloc.start()
        try:
            tracemalloc.reset_peak()
            func()
            _current, peak = tracemalloc.get_traced_memory()
        finally:
            tracemalloc.stop()
        best = min(best, peak)
    return best


def test_stream_gate():
    """CI acceptance gate: no throughput regression, strictly lower
    peak memory than the barrier engine at the committed smoke scale.

    Both comparisons are best-of-``GATE_RUNS`` with a documented
    timing allowance (``THROUGHPUT_TOLERANCE``) so a single noisy
    sample on a loaded shared runner cannot block unrelated PRs."""
    sites = _site_pool()
    config = EngineConfig(workers=POOL_WORKERS, batch=POOL_BATCH,
                          kernel=POOL_KERNEL)
    with Engine(config) as barrier, StreamingEngine(
        config, queue_depth=QUEUE_DEPTH, use_shmem=False
    ) as stream:
        # Warm both pools and pin byte-identity once, before timing.
        want = barrier.run_sites(sites)
        got = stream.run_sites(sites)
        for a, b in zip(got, want):
            assert a.same_outputs(b)
        del got, want

        barrier_time = _best_of(GATE_RUNS, lambda: barrier.run_sites(sites))
        stream_time = _best_of(GATE_RUNS,
                               lambda: _consume_stream(stream, sites))
        barrier_peak = _peak_traced_bytes(
            lambda: barrier.run_sites(sites), runs=GATE_RUNS
        )
        stream_peak = _peak_traced_bytes(
            lambda: _consume_stream(stream, sites), runs=GATE_RUNS
        )

    print(f"\nstream vs barrier at {len(sites)} sites, "
          f"{POOL_WORKERS} workers:")
    print(f"  wall-clock  barrier {barrier_time * 1e3:7.1f} ms   "
          f"stream {stream_time * 1e3:7.1f} ms   "
          f"({barrier_time / stream_time:.2f}x)")
    print(f"  peak heap   barrier {barrier_peak / 1024:7.0f} KiB  "
          f"stream {stream_peak / 1024:7.0f} KiB  "
          f"({barrier_peak / max(stream_peak, 1):.2f}x)")

    assert stream_time <= barrier_time * THROUGHPUT_TOLERANCE, (
        f"streaming engine regressed throughput: {stream_time:.3f}s vs "
        f"barrier {barrier_time:.3f}s over {len(sites)} sites"
    )
    if len(sites) >= 48:
        assert stream_peak < barrier_peak, (
            f"streaming engine peak heap not below barrier: "
            f"{stream_peak} >= {barrier_peak} bytes at {len(sites)} sites"
        )


def test_recovery_overhead_gate():
    """CI acceptance gate: arming worker recovery (watchdog, deadlines,
    resilient executor) with zero faults injected must not tax the
    fault-free streaming path beyond ``RECOVERY_TOLERANCE``.

    Live relative comparison -- both planes timed best-of-``GATE_RUNS``
    in the same process on the same site pool, so host speed divides
    out (docs/RESILIENCE.md "Host data plane fault model")."""
    from repro.resilience.workers import WorkerRecovery

    sites = _site_pool()
    config = EngineConfig(workers=POOL_WORKERS, batch=POOL_BATCH,
                          kernel=POOL_KERNEL)
    recovery = WorkerRecovery()  # fault-free plan, default deadline
    with StreamingEngine(config, queue_depth=QUEUE_DEPTH,
                         use_shmem=False) as plain, StreamingEngine(
        config, queue_depth=QUEUE_DEPTH, use_shmem=False,
        recovery=recovery,
    ) as recovered:
        # Warm both pools and pin byte-identity once, before timing.
        want = plain.run_sites(sites)
        got = recovered.run_sites(sites)
        for a, b in zip(got, want):
            assert a.same_outputs(b)
        del got, want
        assert not recovered.recovery_counters, (
            "fault-free recovery run recorded recovery work: "
            f"{recovered.recovery_counters}"
        )

        plain_time = _best_of(GATE_RUNS,
                              lambda: _consume_stream(plain, sites))
        recovered_time = _best_of(GATE_RUNS,
                                  lambda: _consume_stream(recovered, sites))

    print(f"\nrecovery overhead at {len(sites)} sites, "
          f"{POOL_WORKERS} workers:")
    print(f"  wall-clock  plain {plain_time * 1e3:7.1f} ms   "
          f"recovered {recovered_time * 1e3:7.1f} ms   "
          f"({recovered_time / plain_time:.2f}x)")

    assert recovered_time <= plain_time * RECOVERY_TOLERANCE, (
        f"worker recovery taxes the fault-free stream: "
        f"{recovered_time:.3f}s vs plain {plain_time:.3f}s over "
        f"{len(sites)} sites"
    )
