"""The serve/loadgen CLI surface, end to end through ``main()``.

tests/test_serve.py proves the serving library; this file drives the
same machinery through the exact entry points users run -- the
``repro serve`` process loop (bound port, shutdown op, final snapshot
line), the ``repro loadgen`` selftest/dry-run/compare paths, and the
flag-validation exits.
"""

import json
import socket
import threading
import time

import pytest

from repro.__main__ import main as cli_main
from repro.serve.client import ServiceClient


@pytest.fixture(scope="module")
def sample_dir(tmp_path_factory):
    out = tmp_path_factory.mktemp("serve-cli") / "sample"
    assert cli_main([
        "simulate", "--out", str(out), "--length", "8000",
        "--coverage", "12", "--indel-rate", "0.0015", "--seed", "11",
    ]) == 0
    return out


def _free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


class TestLoadgenCli:
    def test_selftest_is_byte_identical(self, tmp_path, capsys):
        report_path = tmp_path / "load.json"
        assert cli_main([
            "loadgen", "--selftest", "--length", "6000",
            "--coverage", "10", "--tenants", "2",
            "--requests-per-tenant", "2", "--seed", "3",
            "--json", str(report_path),
        ]) == 0
        out = capsys.readouterr().out
        assert "byte-identical" in out
        report = json.loads(report_path.read_text())
        assert report["completed"] + report["retried_requests"] >= 4
        assert report["server"]["counters"]["serve.requests_completed"] > 0

    def test_selftest_from_files_with_out_and_compare(self, sample_dir,
                                                      tmp_path, capsys):
        batch = tmp_path / "batch.sam"
        assert cli_main([
            "realign", "--reference", str(sample_dir / "reference.fa"),
            "--sam", str(sample_dir / "aligned.sam"), "--out", str(batch),
        ]) == 0
        served = tmp_path / "served.sam"
        assert cli_main([
            "loadgen", "--selftest",
            "--reference", str(sample_dir / "reference.fa"),
            "--sam", str(sample_dir / "aligned.sam"),
            "--tenants", "2", "--seed", "5",
            "--out", str(served), "--compare", str(batch),
        ]) == 0
        assert "matches" in capsys.readouterr().out
        # The compare already passed; pin the raw-bytes claim too.
        assert served.read_bytes() == batch.read_bytes()

    def test_dry_run_reports_exact_percentiles(self, tmp_path, capsys):
        report_path = tmp_path / "dry.json"
        assert cli_main([
            "loadgen", "--dry-run", "--length", "6000",
            "--tenants", "3", "--requests-per-tenant", "4",
            "--seed", "1", "--json", str(report_path),
        ]) == 0
        assert "p99" in capsys.readouterr().out
        report = json.loads(report_path.read_text())
        assert report["requests"] == 12
        # Virtual time: same seed, same report, every platform.
        rerun = tmp_path / "dry2.json"
        assert cli_main([
            "loadgen", "--dry-run", "--length", "6000",
            "--tenants", "3", "--requests-per-tenant", "4",
            "--seed", "1", "--json", str(rerun),
        ]) == 0
        assert rerun.read_text() == report_path.read_text()

    def test_sam_without_reference_is_rejected(self, sample_dir, capsys):
        assert cli_main([
            "loadgen", "--dry-run",
            "--sam", str(sample_dir / "aligned.sam"),
        ]) == 2
        assert "--sam requires --reference" in capsys.readouterr().err

    def test_bad_engine_flags_rejected(self, capsys):
        assert cli_main([
            "loadgen", "--selftest", "--length", "6000", "--workers", "0",
        ]) == 2
        assert "--workers" in capsys.readouterr().err


class TestServeCli:
    def test_serve_accepts_traffic_then_shuts_down(self, sample_dir,
                                                   capsys):
        import asyncio

        port = _free_port()
        rc = {}

        def serve():
            rc["serve"] = cli_main([
                "serve", "--reference", str(sample_dir / "reference.fa"),
                "--host", "127.0.0.1", "--port", str(port),
            ])

        thread = threading.Thread(target=serve, daemon=True)
        thread.start()

        async def drive():
            deadline = time.perf_counter() + 30.0
            while True:
                try:
                    client = await ServiceClient.open("127.0.0.1", port)
                    break
                except OSError:
                    if time.perf_counter() > deadline:
                        raise
                    await asyncio.sleep(0.05)
            try:
                assert await client.ping()
                lines = (sample_dir / "aligned.sam").read_text().splitlines()
                reads = [ln for ln in lines if not ln.startswith("@")]
                result = await client.realign(reads[:40])
                stats = await client.stats()
                await client.shutdown()
            finally:
                await client.close()
            return result, stats

        result, stats = asyncio.run(drive())
        thread.join(timeout=30.0)
        assert not thread.is_alive(), "serve process did not shut down"
        assert rc["serve"] == 0
        assert len(result.sam) == 40
        assert result.latency_ms > 0.0
        assert stats["counters"]["serve.requests_completed"] >= 1
        out = capsys.readouterr().out
        assert f"serving on 127.0.0.1:{port}" in out
        assert "completed" in out  # the final snapshot line

    def test_bad_service_config_rejected(self, sample_dir, capsys):
        assert cli_main([
            "serve", "--reference", str(sample_dir / "reference.fa"),
            "--max-queue-sites", "0",
        ]) == 2
        assert "max_queue_sites" in capsys.readouterr().err

    def test_bad_engine_flags_rejected(self, sample_dir, capsys):
        assert cli_main([
            "serve", "--reference", str(sample_dir / "reference.fa"),
            "--workers", "0",
        ]) == 2
        assert "--workers" in capsys.readouterr().err
