"""Unit tests for the FPGA substrate models."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hw.arbiter import RoundRobinArbiter, contention_slowdown
from repro.hw.axi import AXI4_DMA_PORT, AXILITE_CONTROL_PORT, AxiLiteBus, AxiPort
from repro.hw.bram import blocks_for_buffer
from repro.hw.clock import (
    F1_CLOCK_125MHZ,
    F1_CLOCK_250MHZ,
    ClockRecipe,
)
from repro.hw.memory import DdrChannelModel, FpgaMemorySystem, PcieDmaModel
from repro.hw.resources import (
    VIRTEX_ULTRASCALE_PLUS_VU9P,
    ir_unit_bram36,
    max_units,
    utilization,
)
from repro.hw.tilelink import TileLinkLink, beats_for_transfer


class TestClock:
    def test_deployed_recipe(self):
        assert F1_CLOCK_125MHZ.frequency_hz == 125e6
        assert F1_CLOCK_125MHZ.timing_met
        assert F1_CLOCK_125MHZ.cycles_to_seconds(125e6) == pytest.approx(1.0)
        assert F1_CLOCK_125MHZ.seconds_to_cycles(2.0) == pytest.approx(250e6)

    def test_rejected_recipe(self):
        # Section IV: 250 MHz fails timing with >95% routing delay.
        assert not F1_CLOCK_250MHZ.timing_met
        assert F1_CLOCK_250MHZ.routing_delay_fraction >= 0.95

    def test_validation(self):
        with pytest.raises(ValueError):
            ClockRecipe("bad", -1, 0.5, True)
        with pytest.raises(ValueError):
            F1_CLOCK_125MHZ.cycles_to_seconds(-1)


class TestBram:
    def test_consensus_buffer_mapping(self):
        # 64 KiB at 256 bits wide: 8 columns x 2 ranks = 16 tiles.
        req = blocks_for_buffer("consensus", 32 * 2048, 256)
        assert req.columns == 8
        assert req.ranks == 2
        assert req.tiles == 16

    def test_narrow_buffer_single_column(self):
        req = blocks_for_buffer("selector", 1024, 32)
        assert req.tiles == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            blocks_for_buffer("x", 0, 32)
        with pytest.raises(ValueError):
            blocks_for_buffer("x", 64, 12)


class TestResources:
    def test_unit_inventory_is_53_tiles(self):
        assert ir_unit_bram36() == 53

    def test_paper_utilization_reproduced(self):
        report = utilization(32)
        assert report.bram_utilization == pytest.approx(0.8762, abs=0.002)
        assert report.clb_utilization == pytest.approx(0.3253, abs=0.0005)
        assert report.fits

    def test_32_units_fit_and_33_would_pass_90_percent(self):
        assert max_units() == 32
        report33 = utilization(33)
        assert report33.bram_utilization > 0.90

    def test_bram_bound_not_clb_bound(self):
        # The paper: unit count "is limited by the number of block RAM
        # cells available".
        report = utilization(32)
        assert report.clb_utilization < report.bram_utilization

    def test_device_table2_figures(self):
        device = VIRTEX_ULTRASCALE_PLUS_VU9P
        assert device.logic_elements == 2_500_000
        assert 6_500 <= device.dsp_slices <= 7_000


class TestMemoryModels:
    def test_dma_transfer_time(self):
        dma = PcieDmaModel(bandwidth_bytes_per_s=8e9, setup_latency_s=5e-6)
        assert dma.transfer_seconds(0) == 0.0
        assert dma.transfer_seconds(8_000_000_000) == pytest.approx(1.0, rel=0.01)

    def test_ddr_burst(self):
        ddr = DdrChannelModel()
        assert ddr.burst_seconds(0) == 0.0
        assert ddr.burst_seconds(1600) > ddr.access_latency_s
        assert ddr.fits(16 * 1024**3)
        assert not ddr.fits(17 * 1024**3)

    def test_memory_system_single_channel(self):
        system = FpgaMemorySystem()
        assert system.capacity_bytes == 16 * 1024**3
        assert system.total_capacity_bytes == 64 * 1024**3
        with pytest.raises(ValueError):
            FpgaMemorySystem(channels_instantiated=5)

    def test_validation(self):
        with pytest.raises(ValueError):
            PcieDmaModel(bandwidth_bytes_per_s=0)
        with pytest.raises(ValueError):
            DdrChannelModel(capacity_bytes=0)


class TestAxi:
    def test_port_beats(self):
        assert AXI4_DMA_PORT.bytes_per_beat == 64
        assert AXI4_DMA_PORT.beats(65) == 2
        assert AXILITE_CONTROL_PORT.beats(4) == 1

    def test_port_validation(self):
        with pytest.raises(ValueError):
            AxiPort("bad", 12)

    def test_axilite_cycles(self):
        bus = AxiLiteBus()
        assert bus.write_cycles(3) == 12
        assert bus.read_cycles(0) == 0


class TestTileLink:
    def test_beats(self):
        link = TileLinkLink(data_width_bits=256)
        assert link.bytes_per_beat == 32
        assert link.beats(33) == 2
        assert beats_for_transfer(64, 512) == 1

    def test_width_frequency_tradeoff(self):
        base = TileLinkLink(256).achievable_frequency_hz()
        wide = TileLinkLink(1024).achievable_frequency_hz()
        assert base == pytest.approx(125e6)
        assert wide < base

    def test_validation(self):
        with pytest.raises(ValueError):
            TileLinkLink(data_width_bits=100)


class TestArbiter:
    def test_round_robin_rotation(self):
        arbiter = RoundRobinArbiter(4)
        grants = [arbiter.grant([0, 1, 2, 3]) for _ in range(8)]
        assert grants == [0, 1, 2, 3, 0, 1, 2, 3]

    def test_idle_cycle(self):
        assert RoundRobinArbiter(4).grant([]) is None

    def test_bad_requester(self):
        with pytest.raises(ValueError):
            RoundRobinArbiter(4).grant([4])

    def test_drain_is_work_conserving(self):
        arbiter = RoundRobinArbiter(3)
        order = arbiter.drain([2, 1, 3])
        assert len(order) == 6
        assert sorted(order) == [0, 0, 1, 2, 2, 2]

    @given(st.lists(st.integers(0, 10), min_size=1, max_size=8)
           .filter(lambda counts: sum(counts) > 0))
    @settings(max_examples=40, deadline=None)
    def test_bounded_unfairness(self, counts):
        """A continuously requesting master waits at most N grants."""
        arbiter = RoundRobinArbiter(len(counts))
        order = arbiter.drain(counts)
        last_seen = {i: -1 for i, c in enumerate(counts) if c > 0}
        remaining = list(counts)
        for step, winner in enumerate(order):
            for requester, count in enumerate(remaining):
                if count > 0 and requester in last_seen:
                    wait = step - last_seen[requester]
                    assert wait <= len(counts)
            last_seen[winner] = step
            remaining[winner] -= 1

    def test_contention_slowdown(self):
        assert contention_slowdown(8, 1) == 8.0
        assert contention_slowdown(2, 4) == 1.0
        with pytest.raises(ValueError):
            contention_slowdown(0)
