"""Property tests for the adversarial workload family.

The realigner's contract on hostile input is *stability*, not heroics:
corruption schedules are deterministic functions of their seed, the
realigner's output on a corrupted sample is deterministic, and neither
the prefilter nor injected worker faults may change a single byte of
it. Hypothesis drives the corruption schedule (seeds and rates); the
chaos-composition checks drive the ``REPRO_WORKER_FAULT_RATE``
environment path end to end.
"""

from __future__ import annotations

import functools
import os

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import Engine, EngineConfig, StreamingEngine
from repro.genomics.simulate import SimulationProfile, simulate_sample
from repro.realign.realigner import IndelRealigner
from repro.workloads.adversarial import (
    AdversarialProfile,
    corrupt_sample,
)

CONTIGS = {"advA": 2_000, "advB": 1_500}
PROFILE = SimulationProfile(coverage=8.0, indel_rate=2e-3, snp_rate=5e-4)


@functools.lru_cache(maxsize=8)
def clean_sample(seed: int):
    return simulate_sample(CONTIGS, profile=PROFILE, seed=seed)


def read_key(read):
    return (read.name, read.chrom, read.pos, read.seq,
            read.quals.tobytes(), str(read.cigar), read.mapq)


def alignment_key(reads):
    return [(r.name, r.pos, str(r.cigar)) for r in reads]


rates = st.floats(min_value=0.0, max_value=0.15)
adversarial_profiles = st.builds(
    AdversarialProfile,
    contamination_rate=rates,
    chimera_rate=rates,
    adapter_rate=rates,
    low_quality_tail_rate=rates,
)


class TestCorruptionSchedule:
    @given(clean_seed=st.integers(0, 3), corrupt_seed=st.integers(0, 10_000),
           profile=adversarial_profiles)
    @settings(max_examples=25, deadline=None)
    def test_corruption_is_deterministic(self, clean_seed, corrupt_seed,
                                         profile):
        sample = clean_sample(clean_seed)
        first = corrupt_sample(sample, profile, seed=corrupt_seed)
        second = corrupt_sample(sample, profile, seed=corrupt_seed)
        assert ([read_key(r) for r in first.sample.reads]
                == [read_key(r) for r in second.sample.reads])
        assert first.labels == second.labels
        assert first.counts == second.counts

    @given(clean_seed=st.integers(0, 3), corrupt_seed=st.integers(0, 10_000),
           profile=adversarial_profiles)
    @settings(max_examples=25, deadline=None)
    def test_labels_account_for_every_change(self, clean_seed, corrupt_seed,
                                             profile):
        sample = clean_sample(clean_seed)
        hostile = corrupt_sample(sample, profile, seed=corrupt_seed)
        original = {read.name: read for read in sample.reads}

        injected = hostile.counts.get("contaminant", 0)
        assert len(hostile.sample.reads) == len(sample.reads) + injected

        aggregated = {}
        for kinds in hostile.labels.values():
            assert len(kinds) == 1  # at most one corruption per read
            aggregated[kinds[0]] = aggregated.get(kinds[0], 0) + 1
        assert aggregated == hostile.counts

        for read in hostile.sample.reads:
            kinds = hostile.labels.get(read.name)
            if kinds == ("contaminant",):
                assert read.name.startswith("contam")
                assert read.name not in original
                lo, hi = profile.contaminant_mapq
                assert lo <= read.mapq < hi
                placement = hostile.sample.truth_placements[read.name]
                assert placement.pos == read.pos
                assert placement.cigar == str(read.cigar)
            else:
                before = original[read.name]
                assert len(read) == len(before)
                assert (read.pos, str(read.cigar)) == (
                    before.pos, str(before.cigar)
                )  # corruption edits content, never coordinates
                if kinds is None:  # clean reads are byte-identical
                    assert read_key(read) == read_key(before)

    @given(clean_seed=st.integers(0, 3), corrupt_seed=st.integers(0, 10_000))
    @settings(max_examples=10, deadline=None)
    def test_zero_rates_are_an_identity(self, clean_seed, corrupt_seed):
        sample = clean_sample(clean_seed)
        profile = AdversarialProfile(
            contamination_rate=0.0, chimera_rate=0.0,
            low_quality_tail_rate=0.0, adapter_rate=0.0,
        )
        hostile = corrupt_sample(sample, profile, seed=corrupt_seed)
        assert not hostile.labels
        assert not hostile.counts
        assert ([read_key(r) for r in hostile.sample.reads]
                == [read_key(r) for r in sample.reads])


class TestHostileRealignment:
    @given(corrupt_seed=st.integers(0, 10_000),
           profile=adversarial_profiles)
    @settings(max_examples=10, deadline=None)
    def test_realignment_is_deterministic(self, corrupt_seed, profile):
        hostile = corrupt_sample(clean_sample(0), profile,
                                 seed=corrupt_seed)
        reference = hostile.sample.reference
        reads = hostile.sample.reads
        first, _ = IndelRealigner(reference).realign(reads)
        second, _ = IndelRealigner(reference).realign(reads)
        assert alignment_key(first) == alignment_key(second)

    @given(corrupt_seed=st.integers(0, 10_000),
           profile=adversarial_profiles)
    @settings(max_examples=10, deadline=None)
    def test_prefilter_is_sound_on_hostile_input(self, corrupt_seed,
                                                 profile):
        """The prefilter may only skip work, never change a decision --
        even when the site holds chimeras and contaminants it was never
        tuned for."""
        hostile = corrupt_sample(clean_sample(1), profile,
                                 seed=corrupt_seed)
        reference = hostile.sample.reference
        reads = hostile.sample.reads
        filtered, _ = IndelRealigner(
            reference, engine=EngineConfig(workers=1, batch=4,
                                           prefilter=True),
        ).realign(reads)
        unfiltered, _ = IndelRealigner(
            reference, engine=EngineConfig(workers=1, batch=4,
                                           prefilter=False),
        ).realign(reads)
        assert alignment_key(filtered) == alignment_key(unfiltered)


class TestChaosComposition:
    """Worker faults injected from the environment change nothing."""

    @pytest.mark.parametrize("streaming", [False, True])
    def test_env_fault_rate_does_not_change_output(self, streaming):
        hostile = corrupt_sample(clean_sample(2), AdversarialProfile(),
                                 seed=7)
        reference = hostile.sample.reference
        reads = hostile.sample.reads
        baseline, _ = IndelRealigner(reference).realign(reads)

        saved = {name: os.environ.get(name)
                 for name in ("REPRO_WORKER_FAULT_RATE", "REPRO_CHAOS_SEED",
                              "REPRO_CHUNK_DEADLINE")}
        os.environ["REPRO_WORKER_FAULT_RATE"] = "0.4"
        os.environ["REPRO_CHAOS_SEED"] = "71"
        os.environ["REPRO_CHUNK_DEADLINE"] = "5.0"
        try:
            config = EngineConfig(workers=2, batch=2)
            engine = (StreamingEngine(config) if streaming
                      else Engine(config))
            try:
                chaotic, _ = IndelRealigner(
                    reference, engine=engine
                ).realign(reads)
            finally:
                engine.close()
        finally:
            for name, value in saved.items():
                if value is None:
                    os.environ.pop(name, None)
                else:
                    os.environ[name] = value
        assert alignment_key(chaotic) == alignment_key(baseline)
