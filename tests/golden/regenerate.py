"""Regenerate the golden regression files in this directory.

The goldens pin the realigner's *exact* observable output -- final SAM
coordinates and per-site WHD grids -- so that any behavioural drift in
the kernel, the consensus selector, or the realigner plumbing fails
tests loudly instead of slipping through as a "small numeric change".

Run deliberately, from the repo root, ONLY when an intentional
behaviour change has been reviewed:

    PYTHONPATH=src python tests/golden/regenerate.py

and commit the regenerated JSON together with the change that caused
it, explaining the drift in the commit message.
"""

from __future__ import annotations

import json
from pathlib import Path

GOLDEN_DIR = Path(__file__).resolve().parent

#: Keep generation parameters in one place: tests import these so the
#: recomputation always matches what regenerate.py wrote.
REALIGN_PARAMS = {
    "contig": "chr22",
    "length": 12_000,
    "coverage": 18.0,
    "indel_rate": 1.5e-3,
    "seed": 7,
}

SITE_SEED = 2019
SITE_COMPLEXITIES = (0.5, 0.75, 1.0, 1.25, 1.5, 2.0)


def realigned_sam_golden() -> dict:
    """Exact post-realignment (name, pos, cigar) for every read."""
    from repro.genomics.simulate import SimulationProfile, simulate_sample
    from repro.realign.realigner import IndelRealigner

    params = REALIGN_PARAMS
    profile = SimulationProfile(
        coverage=params["coverage"], indel_rate=params["indel_rate"],
    )
    sample = simulate_sample(
        {params["contig"]: params["length"]},
        profile=profile, seed=params["seed"],
    )
    updated, report = IndelRealigner(sample.reference).realign(sample.reads)
    return {
        "params": params,
        "targets_identified": report.targets_identified,
        "sites_built": report.sites_built,
        "reads_realigned": report.reads_realigned,
        "reads": [
            {
                "name": read.name,
                "pos": read.pos,
                "cigar": str(read.cigar) if read.cigar is not None else None,
            }
            for read in updated
        ],
    }


def site_results_golden() -> dict:
    """Exact SiteResult grids for a spread of synthetic sites."""
    import numpy as np

    from repro.realign.whd import realign_site
    from repro.workloads.generator import BENCH_PROFILE, synthesize_site

    rng = np.random.default_rng(SITE_SEED)
    entries = []
    for index, complexity in enumerate(SITE_COMPLEXITIES):
        site = synthesize_site(rng, BENCH_PROFILE, complexity=complexity)
        result = realign_site(site, vectorized=True)
        entries.append({
            "site": index,
            "complexity": complexity,
            "num_consensuses": int(result.min_whd.shape[0]),
            "num_reads": int(result.min_whd.shape[1]),
            "best_cons": int(result.best_cons),
            "scores": result.scores.tolist(),
            "min_whd": result.min_whd.tolist(),
            "min_whd_idx": result.min_whd_idx.tolist(),
            "realign": [bool(x) for x in result.realign],
            "new_pos": result.new_pos.tolist(),
        })
    return {"seed": SITE_SEED, "sites": entries}


def evaluation_golden(scenario: str) -> dict:
    """The full :class:`EvaluationReport` for one accuracy scenario.

    Pins realignment *outcomes* -- mismatch totals before/after,
    truth concordance, truth-INDEL precision/recall, per-site deltas --
    at the scenario's default seed. Score-identical across kernels,
    engines, worker counts, and fault schedules by construction, so a
    drift here means the realigner's behaviour changed, not its
    scheduling.
    """
    from repro.evaluate import run_scenario

    return run_scenario(scenario).to_dict()


def main() -> None:
    targets = {
        "realigned_sam.json": realigned_sam_golden(),
        "site_results.json": site_results_golden(),
        "evaluation_toy.json": evaluation_golden("toy"),
        "evaluation_cohort.json": evaluation_golden("cohort"),
        "evaluation_adversarial.json": evaluation_golden("adversarial"),
    }
    for name, payload in targets.items():
        path = GOLDEN_DIR / name
        path.write_text(json.dumps(payload, indent=1, sort_keys=True))
        print(f"wrote {path}")


if __name__ == "__main__":
    main()
