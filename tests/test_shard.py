"""Unit tests for the horizontal shard plane and the site-result cache.

The invariants: the partition function is stable and total; cached
results are byte-identical to fresh kernel runs at *any* coordinate
(translation invariance); the LRU byte budget actually bounds memory;
the plane's merge preserves input order at any shard count; telemetry
and serving snapshots surface the cache and per-shard occupancy.
"""

import numpy as np
import pytest

from repro.engine import Engine, EngineConfig
from repro.shard import (
    DEFAULT_REGION_SPAN,
    ShardPlane,
    ShardPlaneConfig,
    SiteResultCache,
    lookup_sites,
    shard_for,
    site_cache_key,
)
from repro.workloads.generator import BENCH_PROFILE, synthesize_site

_SITE_CACHE = {}


def _sites(n, seed=0, spread=True):
    key = (n, seed, spread)
    if key not in _SITE_CACHE:
        rng = np.random.default_rng(seed)
        _SITE_CACHE[key] = [
            synthesize_site(rng, BENCH_PROFILE,
                            complexity=0.3 + 0.15 * (i % 4),
                            start=(i * 4 * DEFAULT_REGION_SPAN
                                   if spread else 0))
            for i in range(n)
        ]
    return _SITE_CACHE[key]


def _assert_identical(got, want):
    assert len(got) == len(want)
    for a, b in zip(got, want):
        assert a.same_outputs(b)
        np.testing.assert_array_equal(a.min_whd, b.min_whd)
        np.testing.assert_array_equal(a.min_whd_idx, b.min_whd_idx)
        np.testing.assert_array_equal(a.new_pos, b.new_pos)


class TestShardFor:
    def test_stable_and_total(self):
        for shards in (1, 2, 3, 8):
            for start in range(0, 200_000, 7_919):
                home = shard_for("22", start, shards)
                assert 0 <= home < shards
                assert home == shard_for("22", start, shards)

    def test_same_region_same_shard(self):
        assert shard_for("22", 100, 4) == shard_for("22", 101, 4)
        assert shard_for("22", 0, 4) == shard_for(
            "22", DEFAULT_REGION_SPAN - 1, 4
        )

    def test_contigs_spread(self):
        homes = {shard_for(str(c), 0, 4) for c in range(1, 23)}
        assert len(homes) > 1

    def test_rejects_bad_shards(self):
        with pytest.raises(ValueError):
            shard_for("22", 0, 0)


class TestSiteCacheKey:
    def test_translation_invariant(self):
        """chrom/start are excluded: a lifted cohort region still hits."""
        rng = np.random.default_rng(3)
        base = synthesize_site(rng, BENCH_PROFILE, 0.5, chrom="1", start=100)
        from dataclasses import replace

        lifted = replace(base, chrom="7", start=987_654)
        config = EngineConfig()
        assert site_cache_key(base, config) == site_cache_key(lifted, config)

    def test_content_sensitive(self):
        rng = np.random.default_rng(3)
        a = synthesize_site(rng, BENCH_PROFILE, 0.5)
        b = synthesize_site(rng, BENCH_PROFILE, 0.5)
        config = EngineConfig()
        assert site_cache_key(a, config) != site_cache_key(b, config)

    def test_grid_shaping_config_is_keyed(self):
        """prefilter/memo/scoring change grids; kernel/workers do not."""
        rng = np.random.default_rng(3)
        site = synthesize_site(rng, BENCH_PROFILE, 0.5)
        base = site_cache_key(site, EngineConfig())
        assert base != site_cache_key(site, EngineConfig(prefilter=False))
        assert base != site_cache_key(site, EngineConfig(scoring="absdiff"))
        assert base != site_cache_key(
            site, EngineConfig(memo_capacity=64, kernel="fft")
        )
        assert base == site_cache_key(site, EngineConfig(kernel="bitpack"))
        assert base == site_cache_key(site, EngineConfig(workers=4, batch=2))


class TestSiteResultCache:
    def _result_for(self, site):
        return Engine(EngineConfig()).run_sites([site])[0]

    def test_round_trip_is_identical(self):
        rng = np.random.default_rng(5)
        site = synthesize_site(rng, BENCH_PROFILE, 0.5, start=12_345)
        result = self._result_for(site)
        cache = SiteResultCache.from_megabytes(4)
        key = site_cache_key(site, EngineConfig())
        cache.put(key, site.start, result)
        got = cache.get(key, site.start)
        _assert_identical([got], [result])
        assert cache.hits == 1 and cache.misses == 0

    def test_materializes_at_new_coordinate(self):
        """A hit at a lifted start rebuilds new_pos against that start,
        byte-identical to realigning the lifted site from scratch."""
        from dataclasses import replace

        rng = np.random.default_rng(5)
        site = synthesize_site(rng, BENCH_PROFILE, 0.6, start=1_000)
        lifted = replace(site, chrom="9", start=777_000)
        config = EngineConfig()
        cache = SiteResultCache.from_megabytes(4)
        cache.put(site_cache_key(site, config), site.start,
                  self._result_for(site))
        got = cache.get(site_cache_key(lifted, config), lifted.start)
        assert got is not None
        _assert_identical([got], [self._result_for(lifted)])

    def test_byte_budget_evicts_lru(self):
        sites = _sites(6, seed=5)
        results = Engine(EngineConfig()).run_sites(sites)
        config = EngineConfig()
        # Budget for roughly two entries, measured from the first.
        probe = SiteResultCache.from_megabytes(64)
        probe.put(site_cache_key(sites[0], config), sites[0].start,
                  results[0])
        cache = SiteResultCache(capacity_bytes=probe.current_bytes * 2 + 64)
        for site, result in zip(sites, results):
            cache.put(site_cache_key(site, config), site.start, result)
        assert cache.evictions > 0
        assert cache.current_bytes <= cache.capacity_bytes
        # The most recent entry survived; the first was evicted.
        assert cache.get(site_cache_key(sites[-1], config),
                         sites[-1].start) is not None
        assert cache.get(site_cache_key(sites[0], config),
                         sites[0].start) is None

    def test_oversized_entry_is_skipped(self):
        rng = np.random.default_rng(5)
        site = synthesize_site(rng, BENCH_PROFILE, 0.5)
        result = self._result_for(site)
        cache = SiteResultCache(capacity_bytes=16)
        cache.put(site_cache_key(site, EngineConfig()), site.start, result)
        assert len(cache) == 0 and cache.inserts == 0

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            SiteResultCache(capacity_bytes=0)

    def test_lookup_sites_without_cache(self):
        sites = _sites(3)
        results, misses, keys = lookup_sites(None, sites, EngineConfig())
        assert results == [None] * 3
        assert misses == [0, 1, 2]
        assert keys == [None] * 3

    def test_snapshot_counter_names(self):
        snap = SiteResultCache.from_megabytes(1).snapshot()
        assert set(snap) == {
            "cache.hits", "cache.misses", "cache.evictions",
            "cache.inserts", "cache.bytes", "cache.entries",
        }


class TestShardPlane:
    def test_merge_preserves_input_order_at_any_shard_count(self):
        sites = _sites(14, seed=1)
        want = Engine(EngineConfig(batch=4)).run_sites(sites)
        for shards in (1, 2, 3, 5):
            with ShardPlane(EngineConfig(batch=4), shards=shards) as plane:
                _assert_identical(plane.run_sites(sites), want)

    def test_unspread_sites_still_complete(self):
        """Every site hashing to one home shard is legal: stealing
        drains the queue and the merge is unaffected."""
        sites = _sites(6, seed=2, spread=False)
        want = Engine(EngineConfig(batch=2)).run_sites(sites)
        with ShardPlane(EngineConfig(batch=2), shards=3) as plane:
            _assert_identical(plane.run_sites(sites), want)
            assert plane.recovery_counters.get("shard.steals", 0) > 0

    def test_empty_run(self):
        with ShardPlane(EngineConfig(), shards=2) as plane:
            assert plane.run_sites([]) == []

    def test_cache_cold_then_warm(self):
        sites = _sites(8, seed=3)
        want = Engine(EngineConfig(batch=3)).run_sites(sites)
        cache = SiteResultCache.from_megabytes(32)
        with ShardPlane(EngineConfig(batch=3), shards=2,
                        cache=cache) as plane:
            _assert_identical(plane.run_sites(sites), want)
            cold = dict(plane.recovery_counters)
            _assert_identical(plane.run_sites(sites), want)
            warm = dict(plane.recovery_counters)
        assert cold["shard.cache_misses"] == len(sites)
        assert warm["shard.cache_hits"] == len(sites)
        assert "shard.dispatched_chunks" not in warm

    def test_evicting_cache_stays_identical(self):
        sites = _sites(10, seed=4)
        want = Engine(EngineConfig(batch=2)).run_sites(sites)
        # A budget too small for the working set: constant eviction.
        cache = SiteResultCache(capacity_bytes=4_096)
        with ShardPlane(EngineConfig(batch=2), shards=2,
                        cache=cache) as plane:
            for _ in range(2):
                _assert_identical(plane.run_sites(sites), want)
        assert cache.evictions > 0

    def test_telemetry_spans_and_counters(self):
        from repro.telemetry.spans import Telemetry

        sites = _sites(9, seed=6)
        telemetry = Telemetry(ticks_per_second=1.0)
        with ShardPlane(EngineConfig(batch=3), shards=2) as plane:
            plane.run_sites(sites, telemetry=telemetry)
        shard_spans = telemetry.spans_in("shard")
        assert shard_spans, "expected CAT_SHARD spans on shard tracks"
        assert all(s.track.startswith("shard plane") for s in shard_spans)
        board = telemetry.counters.scalars
        assert board.get("shard.completed_chunks", 0) >= 1
        assert board.get("shard.sites", 0) == len(sites)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            ShardPlaneConfig(shards=0)
        with pytest.raises(ValueError):
            ShardPlaneConfig(max_attempts=0)
        with pytest.raises(ValueError):
            ShardPlane(EngineConfig(), shards=3,
                       plane=ShardPlaneConfig(shards=2))

    def test_occupancy_reported(self):
        sites = _sites(8, seed=7)
        with ShardPlane(EngineConfig(batch=2), shards=2) as plane:
            plane.run_sites(sites)
            occupancy = plane.occupancy()
        assert occupancy
        assert all(0.0 <= v <= 1.0 for v in occupancy.values())


class TestRealignerIntegration:
    def test_realigner_accepts_shard_plane(self):
        from repro.genomics.simulate import simulate_sample
        from repro.realign.realigner import IndelRealigner

        sample = simulate_sample({"chrS": 5_000}, seed=11)
        serial, _report = IndelRealigner(sample.reference).realign(
            sample.reads
        )
        plane = ShardPlane(EngineConfig(batch=3), shards=2)
        try:
            sharded, _report = IndelRealigner(
                sample.reference, engine=plane
            ).realign(sample.reads)
        finally:
            plane.close()
        assert [(r.name, r.pos, str(r.cigar)) for r in sharded] == \
               [(r.name, r.pos, str(r.cigar)) for r in serial]

    def test_repro_shards_env_routes_default_path(self, monkeypatch):
        from repro.genomics.simulate import simulate_sample
        from repro.realign.realigner import IndelRealigner

        sample = simulate_sample({"chrS": 4_000}, seed=12)
        serial, _ = IndelRealigner(sample.reference).realign(sample.reads)
        monkeypatch.setenv("REPRO_SHARDS", "2")
        realigner = IndelRealigner(sample.reference)
        sharded, _ = realigner.realign(sample.reads)
        engine = realigner._engine_instance()
        assert isinstance(engine, ShardPlane)
        engine.close()
        assert [(r.name, r.pos, str(r.cigar)) for r in sharded] == \
               [(r.name, r.pos, str(r.cigar)) for r in serial]


class TestServingIntegration:
    def test_snapshot_surfaces_cache_and_shards(self):
        import asyncio

        from repro.serve.service import RealignmentService

        async def run():
            cache = SiteResultCache.from_megabytes(16)
            plane = ShardPlane(EngineConfig(batch=4), shards=2, cache=cache)
            service = RealignmentService(plane)
            await service.start()
            try:
                sites = _sites(6, seed=8)
                await service.submit_sites(sites)
                await service.submit_sites(sites)  # warm pass
                return service.snapshot()
            finally:
                await service.close()
                plane.close()

        snapshot = asyncio.run(run())
        as_dict = snapshot.as_dict()
        assert snapshot.counters["cache.hits"] > 0
        assert snapshot.cache_hit_rate > 0.0
        assert as_dict["cache_hit_rate"] == snapshot.cache_hit_rate
        assert "shard_saturation" in as_dict
        assert "cache" in snapshot.describe()

    def test_service_level_cache_splice(self):
        import asyncio

        from repro.serve.service import RealignmentService

        async def run():
            cache = SiteResultCache.from_megabytes(16)
            service = RealignmentService(EngineConfig(batch=4), cache=cache)
            await service.start()
            try:
                sites = _sites(5, seed=9)
                first = await service.submit_sites(sites)
                second = await service.submit_sites(sites)
                return first, second, service.snapshot()
            finally:
                await service.close()

        first, second, snapshot = asyncio.run(run())
        _assert_identical(second, first)
        assert snapshot.counters["serve.cache_hits"] == 5
        assert snapshot.counters["serve.cache_misses"] == 5


class TestDuplicateHeavySchedule:
    def test_hot_set_dominates(self):
        from repro.workloads.serving import (
            LoadProfile,
            synthesize_load_schedule,
        )

        profile = LoadProfile(tenants=4, requests_per_tenant=16,
                              schedule="duplicate_heavy")
        schedule = synthesize_load_schedule(profile, num_jobs=32, seed=1)
        hot = max(1, 32 // 8)
        hot_hits = sum(1 for r in schedule if r.job < hot)
        assert hot_hits > len(schedule) * 0.6
        # Deterministic from the seed, like every schedule.
        assert schedule == synthesize_load_schedule(profile, num_jobs=32,
                                                    seed=1)

    def test_uniform_unchanged_by_new_field(self):
        from repro.workloads.serving import (
            LoadProfile,
            synthesize_load_schedule,
        )

        profile = LoadProfile(tenants=2, requests_per_tenant=4)
        jobs = [r.job for r in
                synthesize_load_schedule(profile, num_jobs=3, seed=0)]
        assert sorted(jobs) == sorted([c % 3 for c in range(8)])

    def test_rejects_unknown_schedule(self):
        from repro.workloads.serving import LoadProfile

        with pytest.raises(ValueError):
            LoadProfile(schedule="zipfian")
