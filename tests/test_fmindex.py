"""Unit and property tests for the FM-index."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.align.fmindex import FMIndex
from repro.align.suffix_array import SuffixArray
from repro.genomics.sequence import random_bases

texts = st.text(alphabet="ACGT", min_size=1, max_size=80)
patterns = st.text(alphabet="ACGT", min_size=1, max_size=6)


class TestConstruction:
    def test_bwt_of_known_text(self):
        # Classic example: BWT("banana$") = "annb$aa"; for DNA we check
        # structural invariants instead of a literary constant.
        index = FMIndex.build("ACGTACGT")
        assert len(index.bwt) == 9  # text + sentinel
        assert sorted(index.bwt) == sorted("ACGTACGT$")
        assert index.bwt.count("$") == 1

    def test_char_starts_ordered(self):
        index = FMIndex.build("GATTACA")
        starts = index.char_starts
        assert starts["$"] == 0
        ordered = sorted(starts.items(), key=lambda kv: kv[1])
        assert [c for c, _ in ordered] == sorted(starts)

    def test_validation(self):
        with pytest.raises(ValueError):
            FMIndex.build("")
        with pytest.raises(ValueError):
            FMIndex.build("AC$GT")
        with pytest.raises(ValueError):
            FMIndex.build("ACGT", sample_rate=0)


class TestQueries:
    def test_count_and_find(self):
        index = FMIndex.build("ACGTACGTAC")
        assert index.count("AC") == 3
        assert index.find("AC") == [0, 4, 8]
        assert index.find("GGT") == []
        assert index.count("ACGTACGTAC") == 1

    def test_rank_consistency(self):
        index = FMIndex.build(random_bases(200, np.random.default_rng(1)),
                              sample_rate=7)
        for char in "ACGT":
            naive = 0
            for position in range(len(index.bwt) + 1):
                assert index.rank(char, position) == naive
                if position < len(index.bwt) and index.bwt[position] == char:
                    naive += 1

    def test_empty_pattern_rejected(self):
        with pytest.raises(ValueError):
            FMIndex.build("ACGT").find("")

    @given(texts, patterns)
    @settings(max_examples=50, deadline=None)
    def test_matches_suffix_array(self, text, pattern):
        fm = FMIndex.build(text, sample_rate=4)
        sa = SuffixArray.build(text)
        assert fm.find(pattern) == sa.find(pattern)

    @given(texts)
    @settings(max_examples=30, deadline=None)
    def test_every_substring_found(self, text):
        fm = FMIndex.build(text)
        rng = np.random.default_rng(0)
        for _ in range(5):
            start = int(rng.integers(0, len(text)))
            end = int(rng.integers(start + 1, len(text) + 1))
            assert start in fm.find(text[start:end])


class TestSuffixMatch:
    def test_full_suffix_present(self):
        index = FMIndex.build("ACGTACGT")
        length, occurrences = index.longest_suffix_match("TACGT")
        assert length == 5
        assert occurrences == 1

    def test_partial_suffix(self):
        index = FMIndex.build("AAAACCCC")
        # Query suffix "GCC": "G" never extends, "CC" does.
        length, occurrences = index.longest_suffix_match("GCC")
        assert length == 2
        assert occurrences == 3  # "CC" occurs at 4, 5, 6

    def test_no_match(self):
        index = FMIndex.build("AAAA")
        assert index.longest_suffix_match("G") == (0, 0)
        assert index.longest_suffix_match("") == (0, 0)
