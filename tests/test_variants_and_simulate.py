"""Unit tests for truth variants and the read simulator."""

import numpy as np
import pytest

from repro.genomics.simulate import (
    ReadSimulator,
    SimulationProfile,
    plan_variants,
    simulate_sample,
)
from repro.genomics.reference import ReferenceGenome
from repro.genomics.variants import Variant, VariantKind


class TestVariant:
    def test_kinds(self):
        assert Variant("1", 5, "A", "T").kind is VariantKind.SNP
        assert Variant("1", 5, "A", "ATT").kind is VariantKind.INSERTION
        assert Variant("1", 5, "ATT", "A").kind is VariantKind.DELETION

    def test_length_change(self):
        assert Variant("1", 5, "A", "ATT").length_change == 2
        assert Variant("1", 5, "ATT", "A").length_change == -2

    def test_identical_alleles_rejected(self):
        with pytest.raises(ValueError):
            Variant("1", 5, "A", "A")

    def test_bad_fraction_rejected(self):
        with pytest.raises(ValueError):
            Variant("1", 5, "A", "T", allele_fraction=0.0)
        with pytest.raises(ValueError):
            Variant("1", 5, "A", "T", allele_fraction=1.5)

    def test_describe(self):
        assert "INS" in Variant("1", 5, "A", "AT").describe()


class TestPlanVariants:
    def test_variants_do_not_overlap(self):
        rng = np.random.default_rng(0)
        ref = ReferenceGenome.random({"1": 50_000}, rng)
        profile = SimulationProfile(snp_rate=2e-3, indel_rate=1e-3)
        variants = plan_variants(ref, profile, rng)
        assert variants
        for earlier, later in zip(variants, variants[1:]):
            assert later.pos >= earlier.pos + earlier.ref_span

    def test_alleles_match_reference(self):
        rng = np.random.default_rng(1)
        ref = ReferenceGenome.random({"1": 30_000}, rng)
        profile = SimulationProfile(snp_rate=2e-3, indel_rate=1e-3)
        for variant in plan_variants(ref, profile, rng):
            fetched = ref.fetch(
                variant.chrom, variant.pos, variant.pos + variant.ref_span
            )
            assert fetched == variant.ref


class TestSimulator:
    def test_coverage_approximate(self):
        sample = simulate_sample({"1": 25_000}, seed=3)
        profile = SimulationProfile()
        expected = profile.coverage * 25_000 / profile.read_length
        assert len(sample.reads) == pytest.approx(expected, rel=0.01)

    def test_reads_are_mapped_and_sized(self):
        sample = simulate_sample({"1": 10_000}, seed=4)
        for read in sample.reads[:200]:
            assert read.is_mapped
            assert len(read) == SimulationProfile().read_length

    def test_deterministic_by_seed(self):
        a = simulate_sample({"1": 8_000}, seed=9)
        b = simulate_sample({"1": 8_000}, seed=9)
        assert [r.pos for r in a.reads] == [r.pos for r in b.reads]
        assert [r.seq for r in a.reads[:20]] == [r.seq for r in b.reads[:20]]

    def test_indel_reads_exist(self):
        profile = SimulationProfile(indel_rate=2e-3, coverage=30)
        sample = simulate_sample({"1": 30_000}, profile=profile, seed=5)
        gapped = [r for r in sample.reads if r.has_indel]
        assert gapped, "expected some correctly-aligned INDEL reads"
        truth_indels = [v for v in sample.truth_variants if v.is_indel]
        assert truth_indels

    def test_misaligned_reads_keep_region(self):
        """Misaligned INDEL reads stay at their true start (gap-free)."""
        profile = SimulationProfile(
            indel_rate=2e-3, coverage=30, aligner_indel_accuracy=0.0
        )
        sample = simulate_sample({"1": 20_000}, profile=profile, seed=6)
        assert all(not r.has_indel for r in sample.reads)

    def test_perfect_aligner_leaves_no_misalignment(self):
        profile = SimulationProfile(
            indel_rate=2e-3, snp_rate=1e-12, coverage=30,
            aligner_indel_accuracy=1.0, base_error_rate=0.0,
        )
        sample = simulate_sample({"1": 20_000}, profile=profile, seed=7)
        reference = sample.reference
        # Every gap-free read matches the reference exactly.
        for read in sample.reads:
            if not read.has_indel:
                window = reference.fetch(read.chrom, read.pos, read.end)
                assert read.seq == window

    def test_profile_validation(self):
        with pytest.raises(ValueError):
            SimulationProfile(read_length=0)
        with pytest.raises(ValueError):
            SimulationProfile(base_error_rate=1.5)
        with pytest.raises(ValueError):
            SimulationProfile(hotspot_mass=1.0)

    def test_explicit_variants_respected(self):
        rng = np.random.default_rng(0)
        ref = ReferenceGenome.random({"1": 5_000}, rng)
        variant = Variant("1", 2_500, ref.fetch("1", 2_500, 2_503),
                          ref.fetch("1", 2_500, 2_501), allele_fraction=1.0)
        simulator = ReadSimulator(ref, SimulationProfile(read_length=100,
                                                         coverage=20), seed=1)
        sample = simulator.simulate([variant])
        assert sample.truth_variants == [variant]


class TestTruthPlacements:
    """The simulator records the alignment a perfect aligner would emit."""

    def test_every_read_has_a_placement(self):
        sample = simulate_sample({"1": 10_000}, seed=21)
        assert set(sample.truth_placements) == {
            read.name for read in sample.reads
        }

    def test_correctly_aligned_reads_match_their_placement(self):
        profile = SimulationProfile(
            indel_rate=2e-3, coverage=20, aligner_indel_accuracy=1.0,
        )
        sample = simulate_sample({"1": 15_000}, profile=profile, seed=22)
        for read in sample.reads:
            placement = sample.truth_placements[read.name]
            assert (read.pos, str(read.cigar)) == (
                placement.pos, placement.cigar
            )

    def test_misaligned_reads_keep_gapped_truth(self):
        profile = SimulationProfile(
            indel_rate=2e-3, coverage=30, aligner_indel_accuracy=0.0,
        )
        sample = simulate_sample({"1": 20_000}, profile=profile, seed=23)
        gapped_truth = [
            read for read in sample.reads
            if not read.has_indel
            and any(op in sample.truth_placements[read.name].cigar
                    for op in "ID")
        ]
        assert gapped_truth, "expected misaligned reads with gapped truth"
        for read in gapped_truth:
            placement = sample.truth_placements[read.name]
            # The emitted alignment absorbed the INDEL gap-free; the
            # truth placement still carries it.
            assert str(read.cigar) != placement.cigar

    def test_placement_aligned_pairs_use_reference_coordinates(self):
        from repro.genomics.simulate import TruthPlacement

        placement = TruthPlacement(pos=100, cigar="3M2D2M")
        assert placement.aligned_pairs() == [
            (0, 100), (1, 101), (2, 102), (3, 105), (4, 106),
        ]
