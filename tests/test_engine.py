"""Unit and integration tests for the batched parallel engine.

The engine's contract is byte-identical output to the scalar kernel for
every configuration (prefilter on/off, memo on/off, any worker count).
These tests pin that contract at each layer: tensor packing, the
prefilter's pruning bookkeeping, memoization, shard merge determinism,
the realigner integrations, and the CLI flags.
"""

import json

import numpy as np
import pytest

from repro.engine import (
    Engine,
    EngineConfig,
    PackedSite,
    PairMemo,
    PrefilterStats,
    min_whd_grid_batched,
    pair_lower_bounds,
    realign_site_batched,
)
from repro.realign.whd import WHD_SENTINEL, min_whd_grid, realign_site
from repro.workloads.generator import BENCH_PROFILE, synthesize_site


def _sites(n=6, seed=11):
    rng = np.random.default_rng(seed)
    return [
        synthesize_site(rng, BENCH_PROFILE,
                        complexity=0.3 + 0.25 * (i % 4))
        for i in range(n)
    ]


class TestPackedSite:
    def test_shapes_and_padding(self):
        site = _sites(1)[0]
        packed = PackedSite.from_site(site)
        assert packed.cons.shape == (site.num_consensuses,
                                     max(len(c) for c in site.consensuses))
        assert packed.reads.shape == packed.quals.shape
        assert packed.reads.shape[0] == site.num_reads
        assert packed.K == packed.cons.shape[1] - packed.lens.min() + 1
        # Padding is the 0 byte, which encodes no real base.
        for j, read in enumerate(site.reads):
            assert bytes(packed.reads[j, :len(read)]).decode() == read
            assert not packed.reads[j, len(read):].any()

    def test_quality_extremes_ignore_padding(self):
        site = _sites(1, seed=5)[0]
        packed = PackedSite.from_site(site)
        for j, quals in enumerate(site.quals):
            assert packed.minq[j] == int(quals.min())
            assert packed.maxq[j] == int(quals.max())

    def test_valid_cells_matches_site_offsets(self):
        site = _sites(1, seed=9)[0]
        packed = PackedSite.from_site(site)
        expected = sum(
            site.offsets(i, j)
            for i in range(site.num_consensuses)
            for j in range(site.num_reads)
        )
        assert packed.valid_cells() == expected

    def test_read_subset_packing(self):
        site = _sites(1, seed=3)[0]
        subset = [0, site.num_reads - 1]
        packed = PackedSite.from_site(site, read_indices=subset)
        assert packed.reads.shape[0] == len(subset)
        assert bytes(
            packed.reads[1, :len(site.reads[subset[1]])]
        ).decode() == site.reads[subset[1]]


class TestBatchedGrid:
    def test_unfiltered_grids_equal_scalar_kernel(self):
        for site in _sites(4):
            mw, mi = min_whd_grid_batched(site, prefilter=False)
            ref_w, ref_i = min_whd_grid(site)
            np.testing.assert_array_equal(mw, ref_w)
            np.testing.assert_array_equal(mi, ref_i)

    def test_prefiltered_outputs_match_scalar(self):
        for scoring in ("similarity", "absdiff"):
            for site in _sites(4, seed=23):
                got = realign_site_batched(site, scoring=scoring)
                want = realign_site(site, scoring=scoring)
                assert got.same_outputs(want)

    def test_pair_lower_bounds_are_sound(self):
        for site in _sites(3, seed=31):
            lb = pair_lower_bounds(site)
            true_w, _ = min_whd_grid(site)
            assert (lb <= true_w).all()

    def test_stats_accounting(self):
        stats = PrefilterStats()
        site = _sites(1)[0]
        realign_site_batched(site, stats=stats)
        assert stats.sites == 1
        assert stats.cells_valid > 0
        assert stats.cells_evaluated <= stats.cells_valid
        assert stats.cells_pruned == (stats.cells_valid
                                      - stats.cells_evaluated)
        assert 0.0 <= stats.prune_fraction <= 1.0

    def test_eliminated_rows_stay_sentinel(self):
        pruned_rows = 0
        for site in _sites(6, seed=41):
            stats = PrefilterStats()
            mw, _ = min_whd_grid_batched(site, stats=stats)
            sentinel_rows = int((mw == WHD_SENTINEL).all(axis=1).sum())
            assert sentinel_rows == stats.rows_eliminated
            pruned_rows += sentinel_rows
        assert pruned_rows > 0  # the filter actually fires on this pool


class TestPairMemo:
    def test_lru_eviction(self):
        memo = PairMemo(capacity=2)
        memo.put("a", 1)
        memo.put("b", 2)
        assert memo.get("a") == 1  # refreshes a
        memo.put("c", 3)  # evicts b, the least recently used
        assert memo.get("b") is None
        assert memo.get("a") == 1
        assert memo.get("c") == 3
        snap = memo.snapshot()
        assert snap["engine.memo_evictions"] == 1
        assert snap["engine.memo_size"] == 2

    def test_memoized_path_is_identical(self):
        memo = PairMemo(capacity=512)
        for site in _sites(3, seed=17):
            got = realign_site_batched(site, memo=memo)
            want = realign_site(site)
            assert got.same_outputs(want)
        # A second pass over the same sites is answered from the memo.
        before = memo.hits
        for site in _sites(3, seed=17):
            got = realign_site_batched(site, memo=memo)
            assert got.same_outputs(realign_site(site))
        assert memo.hits > before

    def test_duplicate_reads_within_site_deduplicate(self):
        site = _sites(1, seed=2)[0]
        dup = type(site)(
            chrom=site.chrom,
            start=site.start,
            consensuses=site.consensuses,
            reads=site.reads + (site.reads[0],),
            quals=site.quals + (site.quals[0],),
            limits=site.limits,
        )
        memo = PairMemo(capacity=64)

        class Sink:
            def __init__(self):
                self.counters = {}

            def count(self, name, delta=1):
                self.counters[name] = self.counters.get(name, 0) + delta

        sink = Sink()
        got = realign_site_batched(dup, telemetry=sink, memo=memo)
        want = realign_site(dup)
        assert got.same_outputs(want)
        assert sink.counters.get("engine.reads_deduped", 0) >= 1


class TestEngineDeterminism:
    def test_workers_do_not_change_results(self):
        sites = _sites(10, seed=77)
        serial = Engine(EngineConfig(workers=1, batch=3)).run_sites(sites)
        with Engine(EngineConfig(workers=3, batch=3)) as engine:
            parallel = engine.run_sites(sites)
        assert len(serial) == len(parallel) == len(sites)
        for a, b in zip(serial, parallel):
            assert a.same_outputs(b)
            np.testing.assert_array_equal(a.min_whd, b.min_whd)

    def test_repeat_runs_are_stable(self):
        sites = _sites(7, seed=13)
        with Engine(EngineConfig(workers=2, batch=2)) as engine:
            first = engine.run_sites(sites)
            second = engine.run_sites(sites)
        for a, b in zip(first, second):
            np.testing.assert_array_equal(a.min_whd, b.min_whd)
            np.testing.assert_array_equal(a.new_pos, b.new_pos)

    def test_shard_stats_cover_every_site(self):
        sites = _sites(9, seed=19)
        engine = Engine(EngineConfig(workers=1, batch=4))
        engine.run_sites(sites)
        assert sum(s.sites for s in engine.shard_stats) == len(sites)
        assert [s.shard for s in engine.shard_stats] == [0, 1, 2]
        assert all(s.end >= s.start for s in engine.shard_stats)

    def test_counters_and_shard_spans_reach_telemetry(self):
        from repro.telemetry import CAT_ENGINE, Telemetry

        sites = _sites(5, seed=29)
        telemetry = Telemetry()
        # kernel pinned: the prune counters asserted below are emitted
        # by the FFT kernel's prefilter, and an explicit kernel is
        # immune to the REPRO_KERNEL override CI applies to this suite.
        Engine(EngineConfig(workers=1, batch=2, kernel="fft")).run_sites(
            sites, telemetry=telemetry
        )
        flat = telemetry.counters.flat()
        assert flat["kernel.sites"] == len(sites)
        assert flat["engine.shards"] == 3
        assert flat["kernel.cells_pruned"] > 0
        assert sum(
            1 for span in telemetry.spans if span.category == CAT_ENGINE
        ) == 3

    def test_empty_site_list(self):
        engine = Engine(EngineConfig())
        assert engine.run_sites([]) == []
        assert engine.shard_stats == []

    def test_config_validation(self):
        with pytest.raises(ValueError):
            EngineConfig(workers=0)
        with pytest.raises(ValueError):
            EngineConfig(batch=0)
        with pytest.raises(ValueError):
            EngineConfig(scoring="magic")
        with pytest.raises(ValueError):
            EngineConfig(memo_capacity=-1)


class TestRealignerIntegration:
    @pytest.fixture(scope="class")
    def sample(self):
        from repro.genomics.simulate import SimulationProfile, simulate_sample

        return simulate_sample(
            {"chr22": 12_000},
            profile=SimulationProfile(coverage=18.0, indel_rate=1.5e-3),
            seed=7,
        )

    @staticmethod
    def _sam(reads):
        return [(r.name, r.pos, str(r.cigar), r.seq) for r in reads]

    def test_engine_realigner_matches_serial(self, sample):
        from repro.realign.realigner import IndelRealigner

        base, base_report = IndelRealigner(sample.reference).realign(
            sample.reads
        )
        for config in (
            EngineConfig(),
            EngineConfig(workers=2, batch=3),
            EngineConfig(prefilter=False),
            EngineConfig(memo_capacity=1024),
        ):
            got, report = IndelRealigner(
                sample.reference, engine=config
            ).realign(sample.reads)
            assert self._sam(got) == self._sam(base)
            assert report.reads_realigned == base_report.reads_realigned
            assert report.sites_built == base_report.sites_built

    def test_engine_scoring_follows_realigner(self, sample):
        from repro.realign.realigner import IndelRealigner

        base, _ = IndelRealigner(sample.reference,
                                 scoring="absdiff").realign(sample.reads)
        got, _ = IndelRealigner(sample.reference, scoring="absdiff",
                                engine=EngineConfig()).realign(sample.reads)
        assert self._sam(got) == self._sam(base)

    def test_engine_rejects_bad_type(self, sample):
        from repro.realign.realigner import IndelRealigner

        realigner = IndelRealigner(sample.reference, engine="turbo")
        with pytest.raises(TypeError):
            realigner.realign(sample.reads)

    def test_fallback_sites_under_chaos_match_with_engine(self, sample):
        """Chaos runs that drain targets to the software fallback stay
        byte-identical when the fallback is served by the engine."""
        from dataclasses import replace

        from repro.core.system import AcceleratedRealigner, SystemConfig
        from repro.resilience.faults import FaultPlan
        from repro.resilience.policy import ResilienceConfig, RetryPolicy

        clean, _run, _report = AcceleratedRealigner(
            sample.reference, SystemConfig.iracc()
        ).realign(sample.reads)
        config = replace(
            SystemConfig.iracc(),
            resilience=ResilienceConfig(
                plan=FaultPlan.chaos(0, 0.9),
                retry=RetryPolicy(max_attempts=1),
            ),
        )
        scalar, run, _ = AcceleratedRealigner(
            sample.reference, config
        ).realign(sample.reads)
        assert run.fallback_site_indices  # chaos actually forced fallbacks
        engined, run2, _ = AcceleratedRealigner(
            sample.reference, config, engine=EngineConfig(workers=2, batch=2)
        ).realign(sample.reads)
        assert run2.fallback_site_indices == run.fallback_site_indices
        assert self._sam(engined) == self._sam(scalar) == self._sam(clean)


class TestEngineCli:
    @pytest.fixture(scope="class")
    def sample_dir(self, tmp_path_factory):
        from repro.__main__ import main as cli_main

        out = tmp_path_factory.mktemp("engine-cli") / "sample"
        assert cli_main([
            "simulate", "--out", str(out), "--length", "9000",
            "--coverage", "14", "--indel-rate", "0.0015", "--seed", "7",
        ]) == 0
        return out

    def _realign(self, sample_dir, out_name, *extra):
        from repro.__main__ import main as cli_main

        out = sample_dir / out_name
        assert cli_main([
            "realign", "--reference", str(sample_dir / "reference.fa"),
            "--sam", str(sample_dir / "aligned.sam"),
            "--out", str(out), *extra,
        ]) == 0
        return out.read_bytes()

    def test_worker_and_prefilter_flags_keep_sam_identical(self, sample_dir):
        serial = self._realign(sample_dir, "serial.sam")
        assert self._realign(
            sample_dir, "workers.sam", "--workers", "2", "--batch", "3"
        ) == serial
        assert self._realign(
            sample_dir, "nopref.sam", "--no-prefilter"
        ) == serial

    def test_bad_engine_flags_rejected(self, sample_dir, capsys):
        from repro.__main__ import main as cli_main

        assert cli_main([
            "realign", "--reference", str(sample_dir / "reference.fa"),
            "--sam", str(sample_dir / "aligned.sam"),
            "--out", str(sample_dir / "bad.sam"), "--workers", "0",
        ]) == 2
        assert "--workers and --batch" in capsys.readouterr().err

    def test_trace_records_engine_session(self, sample_dir, capsys):
        from repro.__main__ import main as cli_main

        trace = sample_dir / "trace.json"
        assert cli_main([
            "trace", "--out", str(trace), "--sites", "8",
            "--workers", "2", "--batch", "4",
        ]) == 0
        assert "[engine]" in capsys.readouterr().out
        payload = json.loads(trace.read_text())
        names = {event.get("name") for event in payload["traceEvents"]}
        assert any("shard" in str(name) for name in names)
