"""Property tests for the batched engine: exactness and filter soundness.

The engine is only allowed to be fast, never different: for any site the
batched FFT kernel must reproduce the scalar kernel's grids exactly, and
the pre-alignment filter's bounds must never prune anything that could
have changed a realignment decision. Hypothesis drives ragged shapes
(mixed read/consensus lengths, zero-quality bases, duplicate reads) that
the fixed workload generator would rarely produce.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import (
    PairMemo,
    min_whd_grid_batched,
    pair_lower_bounds,
    realign_site_batched,
)
from repro.engine.batch import PackedSite, fast_fft_length
from repro.engine.prefilter import pairs_cannot_beat_reference
from repro.realign.site import RealignmentSite
from repro.realign.whd import min_whd_grid, realign_site
from repro.workloads.generator import BENCH_PROFILE, synthesize_site


def ragged_site(draw):
    """A small site with deliberately mixed lengths and qualities.

    Qualities include 0 (a Phred-0 base bounds nothing, which exercises
    the filter's minq == 0 threshold path).
    """
    num_reads = draw(st.integers(1, 5))
    read_lens = [draw(st.integers(1, 10)) for _ in range(num_reads)]
    longest = max(read_lens)
    num_cons = draw(st.integers(1, 4))
    cons = tuple(
        draw(st.text(alphabet="ACGT", min_size=m, max_size=m))
        for m in (
            draw(st.integers(longest, longest + 20))
            for _ in range(num_cons)
        )
    )
    reads = tuple(
        draw(st.text(alphabet="ACGT", min_size=n, max_size=n))
        for n in read_lens
    )
    quals = tuple(
        np.array(
            draw(st.lists(st.integers(0, 60), min_size=n, max_size=n)),
            dtype=np.uint8,
        )
        for n in read_lens
    )
    return RealignmentSite(chrom="c", start=draw(st.integers(0, 10_000)),
                           consensuses=cons, reads=reads, quals=quals)


class TestBatchedExactness:
    @given(st.data())
    @settings(max_examples=60, deadline=None)
    def test_unfiltered_grids_equal_scalar(self, data):
        site = ragged_site(data.draw)
        mw, mi = min_whd_grid_batched(site, prefilter=False)
        ref_w, ref_i = min_whd_grid(site)
        np.testing.assert_array_equal(mw, ref_w)
        np.testing.assert_array_equal(mi, ref_i)

    @given(st.data(), st.sampled_from(["similarity", "absdiff"]))
    @settings(max_examples=60, deadline=None)
    def test_prefiltered_decisions_equal_scalar(self, data, scoring):
        site = ragged_site(data.draw)
        got = realign_site_batched(site, scoring=scoring)
        want = realign_site(site, scoring=scoring)
        assert got.same_outputs(want)

    @given(st.integers(0, 400))
    @settings(max_examples=20, deadline=None)
    def test_synthesized_sites_equal_scalar(self, seed):
        site = synthesize_site(np.random.default_rng(seed), BENCH_PROFILE,
                               complexity=0.4)
        assert realign_site_batched(site).same_outputs(realign_site(site))
        mw, mi = min_whd_grid_batched(site, prefilter=False)
        ref_w, ref_i = min_whd_grid(site)
        np.testing.assert_array_equal(mw, ref_w)
        np.testing.assert_array_equal(mi, ref_i)


class TestPrefilterSoundness:
    @given(st.data())
    @settings(max_examples=60, deadline=None)
    def test_lower_bounds_never_exceed_true_whd(self, data):
        site = ragged_site(data.draw)
        lb = pair_lower_bounds(site)
        true_w, _ = min_whd_grid(site)
        assert (lb <= true_w).all()

    @given(st.data())
    @settings(max_examples=60, deadline=None)
    def test_never_prunes_a_pair_that_beats_the_reference(self, data):
        """A (consensus, read) pair whose true WHD is strictly below the
        reference's could trigger realignment; the filter must never
        flag it as prunable."""
        site = ragged_site(data.draw)
        lb = pair_lower_bounds(site)
        true_w, _ = min_whd_grid(site)
        flagged = pairs_cannot_beat_reference(lb, true_w[0])
        beats_ref = true_w < true_w[0][None, :]
        assert not (flagged & beats_ref).any()
        assert not flagged[0].any()  # the reference row is never flagged


class TestMemoProperties:
    @given(st.data())
    @settings(max_examples=30, deadline=None)
    def test_memo_with_duplicate_reads_is_exact(self, data):
        site = ragged_site(data.draw)
        dup_of = data.draw(st.integers(0, site.num_reads - 1))
        dup = RealignmentSite(
            chrom=site.chrom, start=site.start,
            consensuses=site.consensuses,
            reads=site.reads + (site.reads[dup_of],),
            quals=site.quals + (site.quals[dup_of],),
        )
        memo = PairMemo(capacity=256)
        got = realign_site_batched(dup, memo=memo)
        want = realign_site(dup)
        assert got.same_outputs(want)
        np.testing.assert_array_equal(got.min_whd, want.min_whd)
        # The duplicate column is answered from the in-site dedup or the
        # memo, never recomputed differently.
        np.testing.assert_array_equal(got.min_whd[:, -1],
                                      got.min_whd[:, dup_of])


class TestPackingProperties:
    @given(st.data())
    @settings(max_examples=40, deadline=None)
    def test_valid_cells_matches_offsets(self, data):
        site = ragged_site(data.draw)
        packed = PackedSite.from_site(site)
        expected = sum(
            site.offsets(i, j)
            for i in range(site.num_consensuses)
            for j in range(site.num_reads)
        )
        assert packed.valid_cells() == expected

    @given(st.integers(1, 5000))
    @settings(max_examples=60, deadline=None)
    def test_fast_fft_length_bounds(self, n):
        length = fast_fft_length(n)
        assert length >= n
        # Never worse than the next power of two, and of the stated form.
        assert length <= 1 << (n - 1).bit_length()
        odd = length
        while odd % 2 == 0:
            odd //= 2
        assert odd in (1, 3, 5, 9, 15)
