"""Failure injection and robustness properties.

Feeds the system malformed, hostile, or boundary inputs and checks that
every layer fails loudly (typed exceptions) or degrades gracefully --
never silently corrupts results.
"""

import functools
import io

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.buffers import BufferError, RecordBuffer
from repro.core.host import HostPlanError, plan_targets
from repro.core.isa import IsaError, ir_set_addr, BufferId
from repro.core.router import RoccCommandRouter, RouterError
from repro.core.scheduler import ScheduledTarget
from repro.core.system import (
    AcceleratedIRSystem,
    AcceleratedRealigner,
    SystemConfig,
)
from repro.genomics.fastq import FastqError, parse_fastq
from repro.genomics.quality import QualityError, phred_from_ascii
from repro.genomics.samlite import SamError, parse_read
from repro.genomics.sequence import SequenceError, validate_bases
from repro.hw.axi import MmioRegisterFile, QueueFullError
from repro.hw.memory import DdrChannelModel
from repro.realign.realigner import IndelRealigner, apply_realignment
from repro.realign.site import RealignmentSite, SiteError, SiteLimits
from repro.genomics.reference import ReferenceGenome
from repro.genomics.read import Read
from repro.genomics.cigar import Cigar
from repro.workloads.generator import BENCH_PROFILE, synthesize_site


class TestMalformedTextInputs:
    def test_binary_garbage_in_fastq(self):
        with pytest.raises((FastqError, QualityError, SequenceError)):
            list(parse_fastq(io.StringIO("@r\n\x00\x01\n+\nxx\n")))

    def test_truncated_fastq_record(self):
        # Header with a sequence but no separator/qualities: loud error.
        with pytest.raises(FastqError):
            list(parse_fastq(io.StringIO("@r\nACGT\n")))
        with pytest.raises((FastqError, QualityError)):
            list(parse_fastq(io.StringIO("@r\nACGT\nplus\n!!!!\n")))

    def test_sam_with_corrupt_flag(self):
        with pytest.raises(SamError):
            parse_read("r\tNaN\t1\t10\t60\t4M\t*\t0\t0\tACGT\t!!!!")

    def test_quality_string_with_control_chars(self):
        with pytest.raises(QualityError):
            phred_from_ascii("abc\x07")

    def test_sequence_with_unicode(self):
        with pytest.raises((SequenceError, UnicodeEncodeError)):
            validate_bases("ACG☃")


class TestSiteBoundaryViolations:
    def test_255_reads_accepted_257_rejected(self):
        limits = SiteLimits()
        cons = ("A" * 16, "A" * 15 + "C")
        ok_reads = tuple("AAAA" for _ in range(limits.max_reads))
        ok_quals = tuple(np.full(4, 1, np.uint8) for _ in ok_reads)
        RealignmentSite("1", 0, cons, ok_reads, ok_quals)
        bad_reads = ok_reads + ("AAAA",)
        bad_quals = ok_quals + (np.full(4, 1, np.uint8),)
        with pytest.raises(SiteError):
            RealignmentSite("1", 0, cons, bad_reads, bad_quals)

    def test_consensus_exactly_at_2048(self):
        cons = ("A" * 2048, "A" * 2047 + "C")
        site = RealignmentSite("1", 0, cons, ("A" * 8,),
                               (np.full(8, 1, np.uint8),))
        assert site.offsets(0, 0) == 2041

    def test_buffer_rejects_oversized_record(self):
        buffer = RecordBuffer("x", num_slots=1, slot_bytes=32)
        with pytest.raises(BufferError):
            buffer.load_slot(0, np.zeros(64, np.uint8))


class TestProtocolViolations:
    def test_command_flood_fills_mmio_queue(self):
        mmio = MmioRegisterFile(command_depth=4)
        for value in range(4):
            mmio.push_command(value)
        with pytest.raises(QueueFullError):
            mmio.push_command(99)
        # Draining restores service.
        assert mmio.pop_command() == 0
        mmio.push_command(99)

    def test_router_rejects_address_for_ghost_unit(self):
        router = RoccCommandRouter(num_units=2)
        with pytest.raises(RouterError):
            router.dispatch(ir_set_addr(3, BufferId.READ_BASES, 0))

    def test_isa_rejects_negative_operand(self):
        with pytest.raises(IsaError):
            ir_set_addr(0, BufferId.READ_BASES, -4)


class TestCapacityPressure:
    def test_host_plan_overflows_small_ddr(self):
        rng = np.random.default_rng(0)
        sites = [synthesize_site(rng, BENCH_PROFILE) for _ in range(4)]
        with pytest.raises(HostPlanError):
            plan_targets(sites, ddr=DdrChannelModel(capacity_bytes=1024))

    def test_empty_site_list_is_fine(self):
        run = AcceleratedIRSystem(SystemConfig.iracc()).run([])
        assert run.total_seconds == 0.0
        assert run.unit_results == []


class TestRealignerRobustness:
    @pytest.fixture
    def reference(self):
        rng = np.random.default_rng(3)
        return ReferenceGenome.random({"1": 4_000}, rng)

    def test_empty_read_set(self, reference):
        updated, report = IndelRealigner(reference).realign([])
        assert updated == []
        assert report.targets_identified == 0

    def test_all_unmapped_reads(self, reference):
        reads = [
            Read(f"u{i}", None, 0, "ACGT", np.full(4, 20, np.uint8))
            for i in range(5)
        ]
        updated, report = IndelRealigner(reference).realign(reads)
        assert [r.name for r in updated] == [r.name for r in reads]
        assert report.reads_realigned == 0

    def test_indel_at_contig_edge(self, reference):
        """An INDEL read hugging position 0 must not crash windowing."""
        window = reference.fetch("1", 0, 50)
        read = Read("edge", "1", 0, window[:48], np.full(48, 30, np.uint8),
                    Cigar.parse("20M2D28M"))
        updated, _report = IndelRealigner(reference).realign([read])
        assert len(updated) == 1

    def test_indel_at_contig_end(self, reference):
        length = reference.length("1")
        start = length - 50
        seq = reference.fetch("1", start, length - 2)
        read = Read("tail", "1", start, seq, np.full(len(seq), 30, np.uint8),
                    Cigar.parse(f"30M2D{len(seq) - 30}M"))
        updated, _report = IndelRealigner(reference).realign([read])
        assert len(updated) == 1


class TestIdempotence:
    def test_second_realignment_pass_changes_nothing(self):
        """After IR, alignments are consistent: a second pass is a no-op
        on read placements (the paper's error-correction semantics)."""
        rng = np.random.default_rng(8)
        from repro.genomics.sequence import random_bases
        from repro.genomics.reference import Contig

        ref_seq = random_bases(3_000, rng)
        reference = ReferenceGenome([Contig("c", ref_seq)])
        donor = ref_seq[:1500] + ref_seq[1504:]
        reads = []
        for i, start in enumerate(range(1420, 1500, 6)):
            seq = donor[start : start + 90]
            k = 1500 - start
            cigar = (Cigar.parse(f"{k}M4D{90 - k}M") if i % 2 == 0
                     else Cigar.parse("90M"))
            reads.append(Read(f"r{i}", "c", start, seq,
                              np.full(90, 30, np.uint8), cigar))
        realigner = IndelRealigner(reference)
        once, _ = realigner.realign(reads)
        twice, _ = realigner.realign(once)
        for a, b in zip(once, twice):
            assert a.pos == b.pos
            assert str(a.cigar) == str(b.cigar)


class TestChaosProperties:
    """Hypothesis properties for the fault-injection layer: under *any*
    seeded FaultPlan, the recovery scheduler preserves the timeline
    invariants of the fault-free scheduler, and the realigner's output
    stays bit-identical to a fault-free run."""

    targets_strategy = st.lists(
        st.tuples(st.integers(0, 20), st.integers(1, 500)), min_size=1,
        max_size=40,
    ).map(lambda pairs: [
        ScheduledTarget(index=i, transfer_cycles=t, compute_cycles=c)
        for i, (t, c) in enumerate(pairs)
    ])

    @given(targets_strategy, st.integers(1, 8), st.integers(0, 2**31 - 1),
           st.floats(0.0, 0.9))
    @settings(max_examples=60, deadline=None)
    def test_recovery_preserves_timeline_invariants(
        self, targets, num_units, chaos_seed, rate
    ):
        from repro.resilience.policy import ResilienceConfig
        from repro.resilience.recovery import schedule_with_recovery

        config = ResilienceConfig.chaos(chaos_seed, rate)
        result = schedule_with_recovery(targets, num_units, config)
        # Every scheduled position completes exactly once, hw or sw.
        assert sorted(result.completions) == list(range(len(targets)))
        assert set(result.completions.values()) <= {"hw", "sw"}
        # Spans on one unit never overlap (failed attempts included),
        # and the host's software timeline is serial too.
        by_unit = {}
        for span in result.spans:
            by_unit.setdefault(span.unit, []).append(span)
        by_unit.setdefault(-1, []).extend(result.fallback_spans)
        for spans in by_unit.values():
            spans.sort(key=lambda s: s.start)
            for left, right in zip(spans, spans[1:]):
                assert left.end <= right.start
        # The makespan covers every span on every timeline.
        ends = [s.end for s in result.spans + result.fallback_spans]
        assert result.makespan == max(ends, default=0)
        # The ledger is internally consistent.
        assert len(result.events) == result.counters.total_injected
        assert len(result.quarantined_units) == \
            result.counters.quarantined_units

    @given(targets_strategy, st.integers(1, 8), st.integers(0, 2**31 - 1),
           st.floats(0.0, 0.9))
    @settings(max_examples=30, deadline=None)
    def test_recovery_is_deterministic(
        self, targets, num_units, chaos_seed, rate
    ):
        from repro.resilience.policy import ResilienceConfig
        from repro.resilience.recovery import schedule_with_recovery

        config = ResilienceConfig.chaos(chaos_seed, rate)
        first = schedule_with_recovery(targets, num_units, config)
        second = schedule_with_recovery(targets, num_units, config)
        assert first.spans == second.spans
        assert first.fallback_spans == second.fallback_spans
        assert first.completions == second.completions
        assert first.makespan == second.makespan

    @given(targets_strategy, st.integers(1, 8))
    @settings(max_examples=30, deadline=None)
    def test_fault_free_plan_is_exactly_schedule_async(
        self, targets, num_units
    ):
        from repro.core.scheduler import schedule_async
        from repro.resilience.faults import FaultPlan
        from repro.resilience.policy import ResilienceConfig
        from repro.resilience.recovery import schedule_with_recovery

        base = schedule_async(targets, num_units)
        resilient = schedule_with_recovery(
            targets, num_units, ResilienceConfig(plan=FaultPlan.none())
        )
        assert resilient.spans == base.spans
        assert resilient.makespan == base.makespan
        assert resilient.transfer_cycles_total == base.transfer_cycles_total
        assert resilient.counters.total_injected == 0

    @given(st.integers(0, 2**31 - 1), st.floats(0.05, 0.8))
    @settings(max_examples=8, deadline=None)
    def test_realignment_bit_identical_under_chaos(self, chaos_seed, rate):
        """The degradation guarantee: whatever the FaultPlan does --
        including targets that drain to the software fallback -- the
        realigned reads are bit-identical to the fault-free run."""
        from dataclasses import replace

        from repro.resilience.policy import ResilienceConfig

        reference, reads, clean = _chaos_baseline()
        config = replace(SystemConfig.iracc(),
                         resilience=ResilienceConfig.chaos(chaos_seed, rate))
        chaotic, run, _report = AcceleratedRealigner(
            reference, config
        ).realign(reads)
        assert run.resilience is not None
        assert len(chaotic) == len(clean)
        for ours, theirs in zip(chaotic, clean):
            assert ours.name == theirs.name
            assert ours.pos == theirs.pos
            assert str(ours.cigar) == str(theirs.cigar)
            assert ours.seq == theirs.seq


@functools.lru_cache(maxsize=1)
def _chaos_baseline():
    """A small simulated sample plus its fault-free realignment."""
    from repro.genomics.simulate import simulate_sample

    sample = simulate_sample({"c": 6_000}, seed=3)
    clean, _run, _report = AcceleratedRealigner(
        sample.reference, SystemConfig.iracc()
    ).realign(sample.reads)
    return sample.reference, sample.reads, clean
