"""Chaos property tests for the fault-tolerant host data plane.

The single invariant: for *any* workload and *any* seeded schedule of
worker faults -- SIGKILL, hang, delay, error -- both engines terminate
and produce output byte-identical to a fault-free serial run, with the
recovery machinery's work bounded (retries cannot exceed what the
retry policy plus bisection permit). Hypothesis drives the seeds; the
fault plan's keyed-generator design makes every failing example
replayable verbatim.
"""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.engine import Engine, EngineConfig, StreamingEngine
from repro.resilience.workers import WorkerFaultPlan, WorkerRecovery
from repro.workloads.generator import BENCH_PROFILE, synthesize_site

#: Hang magnitudes are capped well under the deadline budget so a
#: drawn hang costs one expiry (~1 s), not the default 60 s.
_PLAN_OVERRIDES = {"hang_seconds": 2.0, "delay_range": (0.001, 0.01)}
_DEADLINE = 0.75

_SITE_CACHE = {}


def _sites(n, seed):
    key = (n, seed)
    if key not in _SITE_CACHE:
        rng = np.random.default_rng(seed)
        _SITE_CACHE[key] = [
            synthesize_site(rng, BENCH_PROFILE,
                            complexity=0.25 + 0.2 * (i % 4))
            for i in range(n)
        ]
    return _SITE_CACHE[key]


def _recovery(chaos_seed, rate):
    return WorkerRecovery(
        plan=WorkerFaultPlan.chaos(chaos_seed, rate, **_PLAN_OVERRIDES),
        chunk_deadline=_DEADLINE,
    )


def _retry_bound(n_sites, batch):
    """Most dispatches any run can make before every chunk is either
    delivered or fully quarantined: each of the ``ceil(n/batch)``
    chunks may exhaust its attempt budget, bisect down to single
    sites (a binary tree with ``<= 2 * batch`` nodes), and exhaust
    each node's budget again."""
    chunks = -(-n_sites // batch)
    attempts = WorkerRecovery().retry.max_attempts
    return chunks * 2 * max(2, 2 * batch) * attempts


def _assert_identical(got, want):
    assert len(got) == len(want)
    for a, b in zip(got, want):
        assert a.same_outputs(b)
        np.testing.assert_array_equal(a.min_whd, b.min_whd)
        np.testing.assert_array_equal(a.new_pos, b.new_pos)


class TestWorkerChaosProperties:
    @given(
        workload_seed=st.integers(0, 10_000),
        chaos_seed=st.integers(0, 10_000),
        n=st.integers(2, 8),
        batch=st.integers(1, 3),
        rate=st.floats(0.05, 0.5),
    )
    @settings(max_examples=4, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_barrier_chaos_matches_serial(
        self, workload_seed, chaos_seed, n, batch, rate
    ):
        sites = _sites(n, workload_seed)
        want = Engine(EngineConfig(workers=1, batch=batch)).run_sites(sites)
        with Engine(EngineConfig(workers=2, batch=batch),
                    recovery=_recovery(chaos_seed, rate)) as engine:
            _assert_identical(engine.run_sites(sites), want)
            counters = engine.recovery_counters
        dispatches = (counters.get("worker.retries", 0)
                      + counters.get("worker.resubmitted", 0))
        assert dispatches <= _retry_bound(n, batch)

    @given(
        workload_seed=st.integers(0, 10_000),
        chaos_seed=st.integers(0, 10_000),
        n=st.integers(2, 8),
        batch=st.integers(1, 3),
        depth=st.integers(1, 3),
        rate=st.floats(0.05, 0.5),
        shmem=st.booleans(),
    )
    @settings(max_examples=4, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_streaming_chaos_matches_serial(
        self, workload_seed, chaos_seed, n, batch, depth, rate, shmem
    ):
        sites = _sites(n, workload_seed)
        want = Engine(EngineConfig(workers=1, batch=batch)).run_sites(sites)
        with StreamingEngine(EngineConfig(workers=2, batch=batch),
                             queue_depth=depth, use_shmem=shmem,
                             recovery=_recovery(chaos_seed, rate)) as stream:
            _assert_identical(stream.run_sites(sites), want)
            counters = stream.recovery_counters
        dispatches = (counters.get("worker.retries", 0)
                      + counters.get("worker.resubmitted", 0))
        assert dispatches <= _retry_bound(n, batch)

    @given(chaos_seed=st.integers(0, 10_000), rate=st.floats(0.1, 0.6))
    @settings(max_examples=3, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_stream_and_barrier_agree_under_same_chaos(
        self, chaos_seed, rate
    ):
        """The two engines recover through different dispatch loops but
        must converge on the same results for the same fault plan."""
        sites = _sites(6, seed=4242)
        with Engine(EngineConfig(workers=2, batch=2),
                    recovery=_recovery(chaos_seed, rate)) as barrier:
            barrier_got = barrier.run_sites(sites)
        with StreamingEngine(EngineConfig(workers=2, batch=2),
                             queue_depth=2,
                             recovery=_recovery(chaos_seed, rate)) as stream:
            stream_got = stream.run_sites(sites)
        _assert_identical(stream_got, barrier_got)
