"""Unit tests for the WHD kernel (paper Algorithms 1 and 2)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.genomics.sequence import seq_to_array
from repro.realign.site import RealignmentSite
from repro.realign.whd import (
    WHD_SENTINEL,
    calc_whd,
    min_whd_grid,
    min_whd_pair,
    realign_site,
    reads_realignments,
    score_and_select,
    whd_cumulative,
    whd_profile,
)

QUALS0 = np.array([10, 20, 45, 10], dtype=np.uint8)
QUALS1 = np.array([10, 60, 30, 20], dtype=np.uint8)


def figure4_site():
    return RealignmentSite(
        chrom="22", start=10_000,
        consensuses=("CCTTAGA", "ACCTGAA", "TCTGCCT"),
        reads=("TGAA", "CCTC"),
        quals=(QUALS0, QUALS1),
    )


class TestCalcWhd:
    def test_figure4_read0_offsets(self):
        # Paper Figure 4 left column: whd = 85, 75, 30, 65 for k = 0..3.
        ref = "CCTTAGA"
        assert [calc_whd(ref, "TGAA", QUALS0, k) for k in range(4)] == \
            [85, 75, 30, 65]

    def test_figure4_read1_offsets(self):
        ref = "CCTTAGA"
        assert [calc_whd(ref, "CCTC", QUALS1, k) for k in range(4)] == \
            [20, 80, 120, 120]

    def test_perfect_match_is_zero(self):
        assert calc_whd("ACGT", "ACGT", [40, 40, 40, 40], 0) == 0

    def test_out_of_range_offset(self):
        with pytest.raises(ValueError):
            calc_whd("ACGT", "AC", [1, 1], 3)


class TestMinWhdPair:
    def test_figure4_minimums(self):
        assert min_whd_pair("CCTTAGA", "TGAA", QUALS0) == (30, 2)
        assert min_whd_pair("CCTTAGA", "CCTC", QUALS1) == (20, 0)

    def test_earliest_offset_wins_ties(self):
        # Read matches at offsets 0 and 4 equally.
        whd, idx = min_whd_pair("ACACAC", "AC", [7, 7])
        assert whd == 0 and idx == 0

    def test_equal_length_pair_has_one_offset(self):
        whd, idx = min_whd_pair("ACGT", "ACGA", [5, 5, 5, 9])
        assert (whd, idx) == (9, 0)


class TestVectorizedForms:
    @given(st.data())
    @settings(max_examples=60, deadline=None)
    def test_profile_matches_scalar(self, data):
        n = data.draw(st.integers(1, 12))
        m = data.draw(st.integers(n, 24))
        cons = data.draw(st.text(alphabet="ACGT", min_size=m, max_size=m))
        read = data.draw(st.text(alphabet="ACGT", min_size=n, max_size=n))
        quals = np.array(
            data.draw(st.lists(st.integers(0, 60), min_size=n, max_size=n)),
            dtype=np.uint8,
        )
        profile = whd_profile(seq_to_array(cons), seq_to_array(read), quals)
        expected = [calc_whd(cons, read, quals, k) for k in range(m - n + 1)]
        assert profile.tolist() == expected

    def test_cumulative_last_column_is_profile(self):
        cons = seq_to_array("CCTTAGA")
        read = seq_to_array("TGAA")
        cum = whd_cumulative(cons, read, QUALS0)
        profile = whd_profile(cons, read, QUALS0)
        assert cum[:, -1].tolist() == profile.tolist()
        # Rows are non-decreasing (partial sums).
        assert (np.diff(cum, axis=1) >= 0).all()

    def test_grid_scalar_vs_vectorized(self):
        site = figure4_site()
        grid_v, idx_v = min_whd_grid(site, vectorized=True)
        grid_s, idx_s = min_whd_grid(site, vectorized=False)
        assert np.array_equal(grid_v, grid_s)
        assert np.array_equal(idx_v, idx_s)


class TestScoreAndSelect:
    def test_figure4_absdiff_scores(self):
        """The pseudo-code/Figure 4 scoring: |delta vs REF| sums."""
        grid, _ = min_whd_grid(figure4_site())
        best, scores = score_and_select(grid, method="absdiff")
        assert scores.tolist() == [0, 30, 35]
        assert best == 1

    def test_figure4_similarity_scores(self):
        """The prose/GATK3 scoring: total min-WHD per consensus."""
        grid, _ = min_whd_grid(figure4_site())
        best, scores = score_and_select(grid, method="similarity")
        assert scores.tolist() == [50, 20, 85]
        assert best == 1  # both semantics agree on the figure's example

    def test_single_consensus_returns_reference(self):
        best, _scores = score_and_select(np.array([[5, 7]]))
        assert best == 0
        best, scores = score_and_select(np.array([[5, 7]]), method="absdiff")
        assert best == 0 and scores.tolist() == [0]

    def test_tie_breaks_to_lowest_index(self):
        grid = np.array([[10, 10], [8, 12], [12, 8]])
        best, scores = score_and_select(grid, method="absdiff")
        assert scores.tolist() == [0, 4, 4]
        assert best == 1
        best_sim, scores_sim = score_and_select(grid, method="similarity")
        assert scores_sim.tolist() == [20, 20, 20]
        assert best_sim == 1

    def test_methods_diverge_on_competing_consensuses(self):
        """The pathology absdiff exhibits: a strongly improving
        consensus has a *large* delta-vs-REF, so absdiff-min prefers a
        weakly improving one; similarity picks the strong one."""
        grid = np.array([
            [100, 100, 100],  # REF
            [0, 0, 100],      # true consensus: fixes two reads
            [90, 90, 100],    # spurious consensus: barely helps
        ])
        best_abs, _ = score_and_select(grid, method="absdiff")
        best_sim, _ = score_and_select(grid, method="similarity")
        assert best_abs == 2
        assert best_sim == 1

    def test_unknown_method_rejected(self):
        with pytest.raises(ValueError):
            score_and_select(np.array([[1]]), method="vibes")


class TestRealignments:
    def test_figure4_decisions(self):
        site = figure4_site()
        result = realign_site(site)
        assert result.realign.tolist() == [True, False]
        assert result.new_pos.tolist() == [10_003, -1]
        assert result.num_realigned == 1

    def test_strict_improvement_required(self):
        grid = np.array([[10, 10], [10, 9]])
        idx = np.zeros_like(grid)
        realign, new_pos = reads_realignments(grid, idx, 1, 0)
        assert realign.tolist() == [False, True]
        assert new_pos.tolist() == [-1, 0]

    def test_same_outputs_predicate(self):
        a = realign_site(figure4_site())
        b = realign_site(figure4_site(), vectorized=False)
        assert a.same_outputs(b)

    def test_sentinel_is_large(self):
        # The sentinel must exceed any reachable WHD (256 * 93).
        assert WHD_SENTINEL > 256 * 93
