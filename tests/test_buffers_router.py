"""Unit tests for the unit buffers, MMIO, and the RoCC command router."""

import numpy as np
import pytest

from repro.core.buffers import (
    BLOCK_BYTES,
    BufferError,
    OutputBuffer,
    RecordBuffer,
    make_unit_buffers,
)
from repro.core.isa import (
    BufferId,
    ir_set_addr,
    ir_set_len,
    ir_set_size,
    ir_set_target,
    ir_start,
)
from repro.core.router import RoccCommandRouter, RouterError
from repro.hw.axi import MmioRegisterFile, QueueFullError
from repro.realign.site import PAPER_LIMITS


class TestRecordBuffer:
    def test_load_and_read(self):
        buffer = RecordBuffer("test", num_slots=4, slot_bytes=64)
        payload = np.arange(40, dtype=np.uint8)
        buffer.load_slot(2, payload)
        assert buffer.slot_length(2) == 40
        assert buffer.read_byte(2, 39) == 39
        block = buffer.read_block(2, 1)
        assert block.tolist() == list(range(32, 40)) + [0] * 24

    def test_slot_bounds(self):
        buffer = RecordBuffer("test", num_slots=2, slot_bytes=32)
        with pytest.raises(BufferError):
            buffer.load_slot(2, np.zeros(4, np.uint8))
        with pytest.raises(BufferError):
            buffer.load_slot(0, np.zeros(33, np.uint8))

    def test_byte_read_past_record(self):
        buffer = RecordBuffer("test", num_slots=1, slot_bytes=32)
        buffer.load_slot(0, np.zeros(4, np.uint8))
        with pytest.raises(BufferError):
            buffer.read_byte(0, 4)

    def test_block_read_outside_slot(self):
        buffer = RecordBuffer("test", num_slots=1, slot_bytes=32)
        with pytest.raises(BufferError):
            buffer.read_block(0, 1)

    def test_geometry_validation(self):
        with pytest.raises(ValueError):
            RecordBuffer("x", num_slots=1, slot_bytes=33)

    def test_reload_clears_old_data(self):
        buffer = RecordBuffer("test", num_slots=1, slot_bytes=32)
        buffer.load_slot(0, np.full(32, 9, np.uint8))
        buffer.load_slot(0, np.full(4, 7, np.uint8))
        assert buffer.read_block(0, 0).tolist() == [7] * 4 + [0] * 28


class TestOutputBuffer:
    def test_write_read_flags(self):
        buffer = OutputBuffer("out", num_entries=8, entry_bytes=1)
        buffer.write(3, 1)
        assert buffer.read(3) == 1
        assert buffer.was_written(3)
        assert not buffer.was_written(2)

    def test_value_range(self):
        buffer = OutputBuffer("out", num_entries=2, entry_bytes=1)
        with pytest.raises(BufferError):
            buffer.write(0, 256)
        wide = OutputBuffer("out4", num_entries=2, entry_bytes=4)
        wide.write(0, 2**32 - 1)

    def test_clear(self):
        buffer = OutputBuffer("out", num_entries=2, entry_bytes=4)
        buffer.write(0, 5)
        buffer.clear()
        assert not buffer.was_written(0)
        assert buffer.read(0) == 0


class TestUnitBuffers:
    def test_figure6_sizes(self):
        buffers = make_unit_buffers(PAPER_LIMITS)
        assert buffers["consensus"].capacity_bytes == 32 * 2048
        assert buffers["read_bases"].capacity_bytes == 256 * 256
        assert buffers["read_quals"].capacity_bytes == 256 * 256
        assert buffers["out_realign"].capacity_bytes == 256
        assert buffers["out_positions"].capacity_bytes == 1024


class TestMmio:
    def test_queue_flow(self):
        mmio = MmioRegisterFile(command_depth=2)
        assert mmio.command_ready
        mmio.push_command(1)
        mmio.push_command(2)
        assert not mmio.command_ready
        with pytest.raises(QueueFullError):
            mmio.push_command(3)
        assert mmio.pop_command() == 1
        assert mmio.pop_command() == 2
        assert mmio.pop_command() is None

    def test_response_flow(self):
        mmio = MmioRegisterFile()
        assert not mmio.response_valid
        assert mmio.poll_response() is None
        mmio.push_response(5)
        assert mmio.response_valid
        assert mmio.poll_response() == 5


class TestRouter:
    def configure(self, router, unit):
        for buffer_id in BufferId:
            router.dispatch(ir_set_addr(unit, buffer_id, 64 * buffer_id))
        router.dispatch(ir_set_target(unit, 1_000))
        router.dispatch(ir_set_size(unit, 2, 4))
        router.dispatch(ir_set_len(unit, 0, 100))
        router.dispatch(ir_set_len(unit, 1, 98))

    def test_full_handshake(self):
        router = RoccCommandRouter(num_units=4)
        self.configure(router, 2)
        started = router.dispatch(ir_start(2))
        assert started == 2
        assert router.units[2].busy
        router.complete(2)
        assert not router.units[2].busy
        assert router.poll_completion() == 2
        assert router.starts_issued == 1

    def test_start_before_configuration_rejected(self):
        router = RoccCommandRouter(num_units=2)
        with pytest.raises(RouterError, match="before full configuration"):
            router.dispatch(ir_start(0))

    def test_missing_consensus_length_rejected(self):
        router = RoccCommandRouter(num_units=1)
        for buffer_id in BufferId:
            router.dispatch(ir_set_addr(0, buffer_id, 0))
        router.dispatch(ir_set_target(0, 0))
        router.dispatch(ir_set_size(0, 2, 4))
        router.dispatch(ir_set_len(0, 0, 100))  # consensus 1 missing
        with pytest.raises(RouterError):
            router.dispatch(ir_start(0))

    def test_double_start_rejected(self):
        router = RoccCommandRouter(num_units=1)
        self.configure(router, 0)
        router.dispatch(ir_start(0))
        with pytest.raises(RouterError, match="busy"):
            router.dispatch(ir_start(0))

    def test_unknown_unit_rejected(self):
        router = RoccCommandRouter(num_units=2)
        with pytest.raises(RouterError):
            router.dispatch(ir_start(5))

    def test_complete_idle_unit_rejected(self):
        router = RoccCommandRouter(num_units=1)
        with pytest.raises(RouterError):
            router.complete(0)

    def test_state_resets_after_completion(self):
        router = RoccCommandRouter(num_units=1)
        self.configure(router, 0)
        router.dispatch(ir_start(0))
        router.complete(0)
        with pytest.raises(RouterError):
            router.dispatch(ir_start(0))  # configuration was cleared
