"""Unit tests for the primary-alignment substrate."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.align.pileup import max_depth, pileup
from repro.align.seed_extend import AlignerConfig, SeedAndExtendAligner
from repro.align.smith_waterman import (
    ScoringScheme,
    alignment_to_read_cigar,
    smith_waterman,
)
from repro.align.suffix_array import SuffixArray
from repro.genomics.cigar import Cigar, CigarOp
from repro.genomics.fastq import FastqRecord
from repro.genomics.read import Read
from repro.genomics.reference import ReferenceGenome
from repro.genomics.sequence import random_bases

bases = st.text(alphabet="ACGT", min_size=1, max_size=60)


class TestSmithWaterman:
    def test_exact_match(self):
        result = smith_waterman("ACGT", "TTACGTTT")
        assert result.score == 4 * 2
        assert result.target_start == 2
        assert str(result.cigar) == "4M"

    def test_mismatch_in_middle(self):
        result = smith_waterman("ACGTACGT", "ACGTTCGT")
        assert result.score == 8 * 2 - 2 - 3  # 7 matches, 1 mismatch

    def test_deletion_from_query(self):
        # Query lacks 2 target bases; flanks long enough that the gapped
        # alignment beats any ungapped local alignment.
        target = "AAGAAGAAGG" + "CC" + "TTGTTGTTGG"
        query = "AAGAAGAAGG" + "TTGTTGTTGG"
        result = smith_waterman(query, target)
        assert str(result.cigar) == "10M2D10M"
        scheme = ScoringScheme()
        assert result.score == 20 * 2 + scheme.gap_cost(2)

    def test_insertion_in_query(self):
        target = "AAGAAGAAGG" + "TTGTTGTTGG"
        query = "AAGAAGAAGG" + "CC" + "TTGTTGTTGG"
        result = smith_waterman(query, target)
        assert str(result.cigar) == "10M2I10M"

    def test_affine_gaps_keep_indels_contiguous(self):
        # A 5-base deletion stays one run even when interior bases of the
        # deleted region happen to match (the linear-gap splitting
        # artifact the assembly consensus generator cannot tolerate).
        target = "ACGGTACCATGG" + "TATGA" + "CCTTAGACGGTA"
        query = "ACGGTACCATGG" + "CCTTAGACGGTA"
        result = smith_waterman(query, target)
        assert str(result.cigar) == "12M5D12M"
        assert result.cigar.indels() == [(12, CigarOp.DELETION, 5)]

    def test_gap_cost_validation(self):
        with pytest.raises(ValueError):
            ScoringScheme().gap_cost(0)

    def test_no_alignment(self):
        result = smith_waterman("AAAA", "TTTT")
        assert result.score == 0

    def test_empty_inputs_rejected(self):
        with pytest.raises(ValueError):
            smith_waterman("", "ACGT")

    def test_scoring_validation(self):
        with pytest.raises(ValueError):
            ScoringScheme(match=0)
        with pytest.raises(ValueError):
            ScoringScheme(mismatch=1)

    def test_soft_clip_expansion(self):
        result = smith_waterman("TTACGTTT"[2:6], "ACGT")
        cigar = alignment_to_read_cigar(result, 4)
        assert cigar.read_length == 4

    @given(bases)
    @settings(max_examples=30, deadline=None)
    def test_self_alignment_is_perfect(self, seq):
        result = smith_waterman(seq, seq)
        assert result.score == 2 * len(seq)
        assert str(result.cigar) == f"{len(seq)}M"

    @given(bases, bases)
    @settings(max_examples=30, deadline=None)
    def test_score_non_negative_and_cigar_consistent(self, q, t):
        result = smith_waterman(q, t)
        assert result.score >= 0
        assert result.cigar.read_length == result.query_span


class TestSuffixArray:
    def test_find_all_occurrences(self):
        sa = SuffixArray.build("ABRACADABRA".replace("B", "C"))
        # Text: ACRACADACRA
        assert sa.find("ACRA") == [0, 7]

    def test_count(self):
        sa = SuffixArray.build("AAAA")
        assert sa.count("AA") == 3

    def test_missing_pattern(self):
        sa = SuffixArray.build("ACGTACGT")
        assert sa.find("GGG") == []

    def test_empty_pattern_rejected(self):
        with pytest.raises(ValueError):
            SuffixArray.build("ACGT").find("")

    def test_empty_text_rejected(self):
        with pytest.raises(ValueError):
            SuffixArray.build("")

    @given(st.text(alphabet="ACGT", min_size=1, max_size=80),
           st.text(alphabet="ACGT", min_size=1, max_size=4))
    @settings(max_examples=50, deadline=None)
    def test_matches_naive_search(self, text, pattern):
        sa = SuffixArray.build(text)
        naive = [
            i for i in range(len(text) - len(pattern) + 1)
            if text[i : i + len(pattern)] == pattern
        ]
        assert sa.find(pattern) == naive

    def test_suffix_order_is_lexicographic(self):
        text = random_bases(200, np.random.default_rng(0))
        sa = SuffixArray.build(text)
        suffixes = [text[i:] for i in sa.suffixes]
        assert suffixes == sorted(suffixes)


class TestSeedAndExtend:
    @pytest.fixture
    def reference(self):
        rng = np.random.default_rng(12)
        return ReferenceGenome.random({"1": 2_000, "2": 1_500}, rng)

    def test_aligns_exact_reads(self, reference):
        aligner = SeedAndExtendAligner(reference)
        rng = np.random.default_rng(5)
        for _ in range(10):
            chrom = ["1", "2"][int(rng.integers(0, 2))]
            start = int(rng.integers(0, reference.length(chrom) - 100))
            seq = reference.fetch(chrom, start, start + 100)
            record = FastqRecord(f"q{start}", seq, np.full(100, 35, np.uint8))
            read = aligner.align_record(record)
            assert read.is_mapped
            assert read.chrom == chrom
            assert read.pos == start
            assert str(read.cigar) == "100M"

    def test_aligns_read_with_snp(self, reference):
        aligner = SeedAndExtendAligner(reference)
        seq = list(reference.fetch("1", 500, 600))
        seq[50] = "A" if seq[50] != "A" else "C"
        read = aligner.align_record(
            FastqRecord("m", "".join(seq), np.full(100, 35, np.uint8))
        )
        assert read.is_mapped and read.pos == 500

    def test_garbage_read_unmapped(self, reference):
        read = SeedAndExtendAligner(reference).align_record(
            FastqRecord("g", "AT" * 50, np.full(100, 35, np.uint8))
        )
        assert not read.is_mapped
        assert read.mapq == 0

    def test_stats_accumulate(self, reference):
        aligner = SeedAndExtendAligner(reference)
        seq = reference.fetch("1", 100, 200)
        aligner.align([FastqRecord("a", seq, np.full(100, 35, np.uint8))])
        assert aligner.stats.reads_total == 1
        assert aligner.stats.reads_aligned == 1
        assert aligner.stats.seeds_generated > 0
        assert aligner.stats.dp_cells > 0

    def test_config_validation(self):
        with pytest.raises(ValueError):
            AlignerConfig(seed_length=0)
        with pytest.raises(ValueError):
            AlignerConfig(min_score_fraction=0.0)


class TestPileup:
    def make_read(self, name, pos, seq, cigar, dup=False):
        return Read(name, "1", pos, seq, np.full(len(seq), 25, np.uint8),
                    Cigar.parse(cigar), is_duplicate=dup)

    def test_depth_counting(self):
        reads = [
            self.make_read("a", 0, "ACGT", "4M"),
            self.make_read("b", 2, "GTTT", "4M"),
        ]
        columns = pileup(reads)
        assert columns[("1", 2)].depth == 2
        assert columns[("1", 5)].depth == 1
        assert max_depth(columns) == 2

    def test_insertion_attaches_to_previous_column(self):
        reads = [self.make_read("a", 10, "AACCGG", "2M2I2M")]
        columns = pileup(reads)
        assert columns[("1", 11)].insertions == ["CC"]

    def test_deletion_recorded(self):
        reads = [self.make_read("a", 10, "AAGG", "2M3D2M")]
        columns = pileup(reads)
        assert columns[("1", 11)].deletions == [3]
        # Deleted positions have no base evidence.
        assert ("1", 12) not in columns

    def test_soft_clips_excluded(self):
        reads = [self.make_read("a", 10, "AACC", "2S2M")]
        columns = pileup(reads)
        assert ("1", 8) not in columns
        assert columns[("1", 10)].bases == ["C"]

    def test_duplicates_skipped(self):
        reads = [self.make_read("a", 0, "ACGT", "4M", dup=True)]
        assert pileup(reads) == {}
        assert pileup(reads, skip_duplicates=False) != {}

    def test_quality_sums(self):
        reads = [
            self.make_read("a", 0, "A", "1M"),
            self.make_read("b", 0, "A", "1M"),
            self.make_read("c", 0, "T", "1M"),
        ]
        col = pileup(reads)[("1", 0)]
        assert col.base_quality_sums() == {"A": 50, "T": 25}
        assert col.base_counts() == {"A": 2, "T": 1}
