"""Tests for the streaming data plane.

The plane's contract is the barrier engine's, incrementally: byte-
identical results at any worker count, queue depth, or shmem setting,
with bounded in-flight state. These tests pin that contract at each
layer -- the reorder buffer, the shared-memory arenas, the streaming
engine, the region cuts, the overlapped refinement pipeline, the
double-buffered dispatch model, the trace export floor, and the CLI.
"""

import json

import numpy as np
import pytest

from repro.engine import (
    Engine,
    EngineConfig,
    HAVE_SHARED_MEMORY,
    ReorderBuffer,
    StreamingEngine,
    pack_chunk,
    unpack_chunk,
)
from repro.engine.shmem import ChunkDescriptor
from repro.genomics.cigar import Cigar
from repro.genomics.read import Read
from repro.genomics.reference import ReferenceGenome
from repro.genomics.simulate import SimulationProfile, simulate_sample
from repro.refinement.regions import contig_buckets, split_regions
from repro.workloads.generator import BENCH_PROFILE, synthesize_site


def _sites(n=6, seed=11):
    rng = np.random.default_rng(seed)
    return [
        synthesize_site(rng, BENCH_PROFILE,
                        complexity=0.3 + 0.25 * (i % 4))
        for i in range(n)
    ]


def make_read(name, chrom, pos, seq="ACGT", cigar=None, quals=None, **kwargs):
    quals = quals if quals is not None else np.full(len(seq), 30, np.uint8)
    return Read(name, chrom, pos, seq, quals,
                Cigar.parse(cigar or f"{len(seq)}M"), **kwargs)


class TestReorderBuffer:
    def test_in_order_pushes_emit_immediately(self):
        buffer = ReorderBuffer()
        assert buffer.push(0, "a") == ["a"]
        assert buffer.push(1, "b") == ["b"]
        assert buffer.pending == 0
        assert buffer.peak_pending == 1

    def test_out_of_order_holds_then_flushes_run(self):
        buffer = ReorderBuffer()
        assert buffer.push(3, "d") == []
        assert buffer.push(1, "b") == []
        assert buffer.push(0, "a") == ["a", "b"]
        assert buffer.push(2, "c") == ["c", "d"]
        assert buffer.pending == 0
        assert buffer.peak_pending == 3

    def test_duplicate_and_stale_indices_rejected(self):
        buffer = ReorderBuffer()
        buffer.push(1, "b")
        with pytest.raises(ValueError):
            buffer.push(1, "again")
        buffer.push(0, "a")
        with pytest.raises(ValueError):
            buffer.push(0, "stale")

    def test_custom_start(self):
        buffer = ReorderBuffer(start=5)
        assert buffer.next_index == 5
        assert buffer.push(5, "x") == ["x"]


class TestArenas:
    def _roundtrip(self, use_shmem):
        sites = _sites(3, seed=7)
        descriptor, handle = pack_chunk(4, sites, use_shmem=use_shmem)
        try:
            rebuilt = unpack_chunk(descriptor)
        finally:
            handle.release()
        assert descriptor.chunk_id == 4
        assert len(rebuilt) == len(sites)
        for got, want in zip(rebuilt, sites):
            assert got.chrom == want.chrom
            assert got.start == want.start
            assert got.consensuses == want.consensuses
            assert got.reads == want.reads
            for a, b in zip(got.quals, want.quals):
                np.testing.assert_array_equal(a, b)
            assert got.limits == want.limits

    def test_inline_roundtrip(self):
        self._roundtrip(use_shmem=False)

    @pytest.mark.skipif(not HAVE_SHARED_MEMORY,
                        reason="no multiprocessing.shared_memory")
    def test_shmem_roundtrip(self):
        self._roundtrip(use_shmem=True)

    @pytest.mark.skipif(not HAVE_SHARED_MEMORY,
                        reason="no multiprocessing.shared_memory")
    def test_unpacked_sites_outlive_the_arena(self):
        sites = _sites(1, seed=3)
        descriptor, handle = pack_chunk(0, sites, use_shmem=True)
        rebuilt = unpack_chunk(descriptor)
        handle.release()
        handle.release()  # idempotent
        assert rebuilt[0].reads == sites[0].reads
        np.testing.assert_array_equal(rebuilt[0].quals[0], sites[0].quals[0])

    def test_descriptor_is_small_and_exclusive(self):
        import pickle

        sites = _sites(2, seed=9)
        descriptor, handle = pack_chunk(0, sites, use_shmem=HAVE_SHARED_MEMORY)
        try:
            if HAVE_SHARED_MEMORY:
                # The pickled descriptor carries names + shapes, not the
                # megabases -- the zero-copy dispatch claim.
                assert len(pickle.dumps(descriptor)) < descriptor.nbytes / 10
        finally:
            handle.release()
        with pytest.raises(ValueError):
            ChunkDescriptor(chunk_id=0, sites=(), nbytes=0)
        with pytest.raises(ValueError):
            ChunkDescriptor(chunk_id=0, sites=(), nbytes=0,
                            arena="x", payload=b"y")


class TestStreamingEngine:
    @pytest.mark.parametrize("workers,depth,shmem", [
        (1, 2, True),
        (3, 1, True),
        (3, 2, True),
        (3, 2, False),
    ])
    def test_matches_barrier_engine(self, workers, depth, shmem):
        sites = _sites(10, seed=77)
        with Engine(EngineConfig(workers=workers, batch=3)) as barrier:
            want = barrier.run_sites(sites)
        with StreamingEngine(EngineConfig(workers=workers, batch=3),
                             queue_depth=depth, use_shmem=shmem) as stream:
            got = stream.run_sites(sites)
        assert len(got) == len(want) == len(sites)
        for a, b in zip(got, want):
            assert a.same_outputs(b)
            np.testing.assert_array_equal(a.min_whd, b.min_whd)

    def test_stream_sites_yields_in_input_order(self):
        sites = _sites(9, seed=19)
        with Engine(EngineConfig(workers=1, batch=2)) as barrier:
            want = barrier.run_sites(sites)
        with StreamingEngine(EngineConfig(workers=2, batch=2)) as stream:
            seen = 0
            for got in stream.stream_sites(sites):
                assert got.same_outputs(want[seen])
                seen += 1
        assert seen == len(sites)

    def test_window_bounds_in_flight_chunks(self):
        sites = _sites(12, seed=5)
        with StreamingEngine(EngineConfig(workers=2, batch=1),
                             queue_depth=1) as stream:
            stream.run_sites(sites)
            stats = stream.stream_stats
        assert stats["stream.chunks"] == 12
        assert 1 <= stats["stream.max_in_flight"] <= 2  # depth x workers
        assert stats["stream.reorder_peak"] <= 2
        assert stats["stream.shmem"] == int(HAVE_SHARED_MEMORY)
        if HAVE_SHARED_MEMORY:
            assert stats["stream.arena_bytes"] > 0

    def test_shard_stats_match_barrier_layout(self):
        sites = _sites(9, seed=19)
        barrier = Engine(EngineConfig(workers=1, batch=4))
        barrier.run_sites(sites)
        with StreamingEngine(EngineConfig(workers=2, batch=4)) as stream:
            stream.run_sites(sites)
        assert ([s.shard for s in stream.shard_stats]
                == [s.shard for s in barrier.shard_stats])
        assert ([s.sites for s in stream.shard_stats]
                == [s.sites for s in barrier.shard_stats])

    def test_counters_and_stream_spans_reach_telemetry(self):
        from repro.telemetry import CAT_STREAM, Telemetry

        sites = _sites(6, seed=29)
        telemetry = Telemetry()
        with StreamingEngine(EngineConfig(workers=2, batch=2)) as stream:
            stream.run_sites(sites, telemetry=telemetry)
        flat = telemetry.counters.flat()
        assert flat["kernel.sites"] == len(sites)
        assert flat["stream.chunks"] == 3
        assert flat["stream.queue_depth"] == 2
        spans = [s for s in telemetry.spans if s.category == CAT_STREAM]
        assert len(spans) == 3

    def test_abandoned_generator_releases_arenas_and_pool_survives(self):
        sites = _sites(8, seed=3)
        with StreamingEngine(EngineConfig(workers=2, batch=2)) as stream:
            iterator = stream.stream_sites(sites)
            next(iterator)
            iterator.close()
            # The engine is still usable after an abandoned stream.
            assert len(stream.run_sites(sites)) == len(sites)

    def test_abandoned_generator_still_records_stats(self):
        from repro.telemetry import Telemetry

        sites = _sites(8, seed=3)
        with StreamingEngine(EngineConfig(workers=2, batch=2)) as stream:
            telemetry = Telemetry()
            iterator = stream.stream_sites(sites, telemetry=telemetry)
            next(iterator)
            iterator.close()
            # The chunks that completed before the abandon are folded
            # into stream_stats and the telemetry session.
            assert stream.stream_stats["stream.chunks"] >= 1
            flat = telemetry.counters.flat()
            assert flat["stream.chunks"] >= 1
            assert flat["kernel.sites"] >= 1

    def test_empty_and_validation(self):
        with StreamingEngine(EngineConfig()) as stream:
            assert stream.run_sites([]) == []
            assert stream.shard_stats == []
        with pytest.raises(ValueError):
            StreamingEngine(EngineConfig(), queue_depth=0)

    def test_realigner_accepts_streaming_engine(self):
        sample = simulate_sample(
            {"chr22": 9_000},
            profile=SimulationProfile(coverage=16.0, indel_rate=1.5e-3),
            seed=7,
        )
        from repro.realign.realigner import IndelRealigner

        base, base_report = IndelRealigner(sample.reference).realign(
            sample.reads
        )
        with StreamingEngine(EngineConfig(workers=2, batch=3)) as stream:
            got, report = IndelRealigner(
                sample.reference, engine=stream
            ).realign(sample.reads)
        assert ([(r.name, r.pos, str(r.cigar)) for r in got]
                == [(r.name, r.pos, str(r.cigar)) for r in base])
        assert report.reads_realigned == base_report.reads_realigned


class TestRegions:
    def test_contig_buckets_follow_reference_rank(self):
        ref = ReferenceGenome.from_dict({"2": "A" * 50, "1": "A" * 50})
        reads = [
            make_read("a", "1", 5),
            make_read("b", "2", 5),
            make_read("c", "zz", 5),
            Read("u", None, 0, "ACGT", np.full(4, 20, np.uint8)),
            make_read("d", "2", 9),
        ]
        buckets = contig_buckets(reads, ref)
        # Declaration order ("2" first), unknown contigs after, unmapped
        # last; input order preserved inside each bucket.
        assert [[r.name for r in b] for b in buckets] == [
            ["b", "d"], ["a"], ["c"], ["u"]
        ]

    def test_split_regions_cuts_only_past_the_frontier(self):
        # "long" spans to 300, so "mid" at 200 is NOT a cut even though
        # it is > gap past "short"'s end; "far" is past everything.
        long = make_read("long", "1", 0, seq="A" * 300, cigar="300M")
        short = make_read("short", "1", 10)
        mid = make_read("mid", "1", 200)
        far = make_read("far", "1", 500)
        regions = split_regions([long, short, mid, far], region_gap=100)
        assert [[r.name for r in region] for region in regions] == [
            ["long", "short", "mid"], ["far"]
        ]

    def test_unmapped_bucket_stays_whole(self):
        unmapped = [Read(f"u{i}", None, 0, "ACGT",
                         np.full(4, 20, np.uint8)) for i in range(3)]
        assert split_regions(unmapped, region_gap=0) == [unmapped]

    def test_split_regions_validation_and_empty(self):
        assert split_regions([]) == []
        with pytest.raises(ValueError):
            split_regions([make_read("a", "1", 0)], region_gap=-1)


class TestStreamingPipeline:
    @pytest.fixture(scope="class")
    def sample(self):
        # Two contigs, sparse enough for intra-contig gap cuts to fire.
        return simulate_sample(
            {"1": 12_000, "2": 9_000},
            profile=SimulationProfile(coverage=20.0, indel_rate=1e-3),
            seed=17,
        )

    @staticmethod
    def _canon(reads):
        return [
            (r.name, r.chrom, r.pos, str(r.cigar), r.seq,
             r.quals.tobytes(), r.is_duplicate, r.is_reverse)
            for r in reads
        ]

    def test_matches_barrier_pipeline(self, sample):
        from repro.refinement.pipeline import (
            RefinementPipeline,
            StreamingRefinementPipeline,
        )

        barrier = RefinementPipeline(sample.reference).run(sample.reads)
        pipeline = StreamingRefinementPipeline(sample.reference)
        streamed = pipeline.run(sample.reads)
        assert self._canon(streamed.reads) == self._canon(barrier.reads)
        assert (streamed.duplicate_report.duplicates_marked
                == barrier.duplicate_report.duplicates_marked)
        assert (streamed.duplicate_report.reads_examined
                == barrier.duplicate_report.reads_examined)
        assert (streamed.realigner_report.reads_realigned
                == barrier.realigner_report.reads_realigned)
        assert [s.stage for s in streamed.stages] == [
            s.stage for s in barrier.stages
        ]
        assert pipeline.stream_stats["pipeline.regions"] >= 2

    def test_region_gap_and_queue_depth_do_not_change_output(self, sample):
        from repro.refinement.pipeline import (
            RefinementPipeline,
            StreamingRefinementPipeline,
        )

        want = self._canon(
            RefinementPipeline(sample.reference).run(sample.reads).reads
        )
        for gap, depth in ((4096, 1), (8192, 3)):
            got = StreamingRefinementPipeline(
                sample.reference, queue_depth=depth, region_gap=gap
            ).run(sample.reads)
            assert self._canon(got.reads) == want

    def test_streaming_engine_through_the_pipeline(self, sample):
        from repro.refinement.pipeline import (
            RefinementPipeline,
            StreamingRefinementPipeline,
        )

        want = RefinementPipeline(sample.reference).run(sample.reads)
        with StreamingEngine(EngineConfig(workers=2, batch=4)) as engine:
            got = StreamingRefinementPipeline(
                sample.reference, engine=engine
            ).run(sample.reads)
        assert self._canon(got.reads) == self._canon(want.reads)

    def test_accelerated_matches_software_streaming(self, sample):
        from repro.refinement.pipeline import (
            RefinementPipeline,
            StreamingRefinementPipeline,
        )

        software = RefinementPipeline(sample.reference).run(sample.reads)
        accelerated = StreamingRefinementPipeline(
            sample.reference, use_accelerator=True
        ).run(sample.reads)
        assert (self._canon(accelerated.reads)
                == self._canon(software.reads))

    def test_fault_injection_recovers_to_identical_output(self, sample):
        from dataclasses import replace

        from repro.core.system import SystemConfig
        from repro.refinement.pipeline import (
            RefinementPipeline,
            StreamingRefinementPipeline,
        )
        from repro.resilience.policy import ResilienceConfig

        clean = RefinementPipeline(sample.reference).run(sample.reads)
        chaos = replace(
            SystemConfig.iracc(),
            resilience=ResilienceConfig.chaos(7, 0.3),
        )
        faulted = StreamingRefinementPipeline(
            sample.reference, use_accelerator=True, system_config=chaos
        ).run(sample.reads)
        assert self._canon(faulted.reads) == self._canon(clean.reads)

    def test_buckets_exceeding_queue_capacity_do_not_deadlock(self):
        """Regression: feeding all contig buckets from the main thread
        used to deadlock once the buckets outnumbered the aggregate
        queue capacity, because the sole consumer of the final queue
        was itself stuck in ``put()``. The feeder is its own thread
        now; a watchdog keeps a reintroduced deadlock from hanging CI.
        """
        import threading

        from repro.refinement.pipeline import (
            RefinementPipeline,
            StreamingRefinementPipeline,
        )

        ref = ReferenceGenome.from_dict(
            {f"c{i}": "ACGT" * 500 for i in range(6)}
        )
        reads = [
            make_read(f"r{i}_{j}", f"c{i}", j * 400, seq="ACGT" * 10)
            for i in range(6)
            for j in range(4)
        ]
        want = self._canon(RefinementPipeline(ref).run(reads).reads)
        pipeline = StreamingRefinementPipeline(
            ref, queue_depth=1, region_gap=50
        )
        outcome = {}

        def _run():
            outcome["result"] = pipeline.run(reads)

        runner = threading.Thread(target=_run, daemon=True)
        runner.start()
        runner.join(timeout=120)
        assert not runner.is_alive(), (
            "streaming pipeline deadlocked with more contig buckets "
            "than aggregate queue capacity"
        )
        assert self._canon(outcome["result"].reads) == want
        assert pipeline.stream_stats["pipeline.regions"] >= 9

    def test_drain_failure_joins_stage_threads(self, sample, monkeypatch):
        """A failure in the main-thread BQSR drain loop must not leak
        blocked stage threads."""
        import threading

        import repro.refinement.pipeline as pipeline_module
        from repro.refinement.pipeline import StreamingRefinementPipeline

        def _boom(*args, **kwargs):
            raise RuntimeError("drain boom")

        monkeypatch.setattr(pipeline_module, "merge_columns", _boom)
        with pytest.raises(RuntimeError, match="drain boom"):
            StreamingRefinementPipeline(sample.reference).run(sample.reads)
        assert not [t for t in threading.enumerate()
                    if t.name.startswith("refine-")]

    def test_stage_errors_propagate(self, sample):
        from repro.refinement.pipeline import StreamingRefinementPipeline

        real = sample.reference

        class ExplodingReference:
            """Sort survives (rank lookups only); realign's first
            ``fetch`` explodes inside its stage thread."""

            contig_names = real.contig_names

            def length(self, chrom):
                return real.length(chrom)

            def __contains__(self, chrom):
                return chrom in real

            def fetch(self, *args):
                raise RuntimeError("boom")

        pipeline = StreamingRefinementPipeline(ExplodingReference())
        with pytest.raises(RuntimeError, match="boom"):
            pipeline.run(sample.reads)

    def test_telemetry_spans_and_counters(self, sample):
        from repro.refinement.pipeline import StreamingRefinementPipeline
        from repro.telemetry import CAT_STREAM, Telemetry

        telemetry = Telemetry(label="pipeline")
        pipeline = StreamingRefinementPipeline(sample.reference)
        pipeline.run(sample.reads, telemetry=telemetry)
        flat = telemetry.counters.flat()
        regions = flat["pipeline.regions"]
        assert regions == pipeline.stream_stats["pipeline.regions"]
        spans = [s for s in telemetry.spans if s.category == CAT_STREAM]
        # One span per region per stage (sort spans are per contig
        # bucket, so at least one per contig).
        assert len(spans) >= 3 * regions

    def test_queue_depth_validation(self, sample):
        from repro.refinement.pipeline import StreamingRefinementPipeline

        with pytest.raises(ValueError):
            StreamingRefinementPipeline(sample.reference, queue_depth=0)


class TestDoubleBufferedDispatch:
    def _run(self, double_buffer):
        from dataclasses import replace

        from repro.core.system import AcceleratedIRSystem, SystemConfig

        sites = _sites(8, seed=13)
        config = replace(SystemConfig.iracc(), dispatch_batch=4,
                         double_buffer=double_buffer)
        return AcceleratedIRSystem(config).run(sites), sites

    def test_default_stays_single_buffered(self):
        from repro.core.system import SystemConfig

        assert SystemConfig().double_buffer is False
        assert SystemConfig.iracc().double_buffer is False

    def test_overlap_never_slows_the_schedule(self):
        single, _ = self._run(double_buffer=False)
        double, _ = self._run(double_buffer=True)
        assert double.schedule.makespan <= single.schedule.makespan
        # Same kernel work either way -- only the charged turnaround moves.
        assert [r.cycles.total for r in double.unit_results] == [
            r.cycles.total for r in single.unit_results
        ]

    def test_figure7_overlapped_rows(self):
        from repro.experiments.figure7 import run

        outcome = run()
        assert (outcome.async_overlapped.makespan
                <= outcome.async_turnaround.makespan)
        assert outcome.overlap_speedup >= 1.0


class TestExportFloor:
    def test_zero_width_spans_export_a_visible_sliver(self):
        from repro.telemetry import Telemetry, to_chrome_trace
        from repro.telemetry.export import MIN_SPAN_DURATION_US

        telemetry = Telemetry(label="floor")
        telemetry.ticks_per_second = 1.0
        telemetry.span("instantish", "track", 1.0, 1.0)
        telemetry.span("real", "track", 2.0, 5.0)
        events = to_chrome_trace(telemetry)["traceEvents"]
        durs = {e["name"]: e["dur"] for e in events if e["ph"] == "X"}
        assert durs["instantish"] == MIN_SPAN_DURATION_US
        assert durs["real"] == pytest.approx(3e6)


class TestStreamCli:
    @pytest.fixture(scope="class")
    def sample_dir(self, tmp_path_factory):
        from repro.__main__ import main as cli_main

        out = tmp_path_factory.mktemp("stream-cli") / "sample"
        assert cli_main([
            "simulate", "--out", str(out), "--length", "9000",
            "--coverage", "14", "--indel-rate", "0.0015", "--seed", "7",
        ]) == 0
        return out

    def _realign(self, sample_dir, out_name, *extra):
        from repro.__main__ import main as cli_main

        out = sample_dir / out_name
        assert cli_main([
            "realign", "--reference", str(sample_dir / "reference.fa"),
            "--sam", str(sample_dir / "aligned.sam"),
            "--out", str(out), *extra,
        ]) == 0
        return out.read_bytes()

    def test_stream_flags_keep_sam_identical(self, sample_dir):
        serial = self._realign(sample_dir, "serial.sam")
        assert self._realign(
            sample_dir, "stream.sam", "--stream", "--workers", "2",
            "--queue-depth", "3",
        ) == serial
        assert self._realign(
            sample_dir, "noshm.sam", "--stream", "--workers", "2",
            "--no-shmem",
        ) == serial

    def test_bad_queue_depth_rejected(self, sample_dir, capsys):
        from repro.__main__ import main as cli_main

        assert cli_main([
            "realign", "--reference", str(sample_dir / "reference.fa"),
            "--sam", str(sample_dir / "aligned.sam"),
            "--out", str(sample_dir / "bad.sam"),
            "--stream", "--queue-depth", "0",
        ]) == 2
        assert "--queue-depth" in capsys.readouterr().err

    def test_trace_records_stream_session(self, sample_dir, capsys):
        from repro.__main__ import main as cli_main

        trace = sample_dir / "trace.json"
        assert cli_main([
            "trace", "--out", str(trace), "--sites", "8",
            "--workers", "2", "--batch", "4", "--stream",
        ]) == 0
        assert "[stream]" in capsys.readouterr().out
        payload = json.loads(trace.read_text())
        processes = {
            e["args"]["name"] for e in payload["traceEvents"]
            if e.get("name") == "process_name"
        }
        assert "stream" in processes
