"""Unit tests for repro.genomics.reference."""

import numpy as np
import pytest

from repro.genomics.reference import Contig, ReferenceGenome


@pytest.fixture
def reference():
    return ReferenceGenome.from_dict({"1": "ACGTACGTAC", "2": "TTTTT"})


class TestContig:
    def test_length(self):
        assert len(Contig("x", "ACGT")) == 4

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            Contig("", "ACGT")

    def test_invalid_bases_rejected(self):
        with pytest.raises(Exception):
            Contig("x", "ACGX")


class TestReferenceGenome:
    def test_requires_contigs(self):
        with pytest.raises(ValueError):
            ReferenceGenome([])

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            ReferenceGenome([Contig("1", "A"), Contig("1", "C")])

    def test_contains_and_names(self, reference):
        assert "1" in reference
        assert "3" not in reference
        assert reference.contig_names == ["1", "2"]

    def test_fetch(self, reference):
        assert reference.fetch("1", 2, 6) == "GTAC"
        assert reference.fetch("1", 0, 0) == ""

    def test_fetch_bounds(self, reference):
        with pytest.raises(IndexError):
            reference.fetch("1", 5, 11)
        with pytest.raises(IndexError):
            reference.fetch("1", -1, 4)
        with pytest.raises(IndexError):
            reference.fetch("1", 6, 4)

    def test_fetch_unknown_contig(self, reference):
        with pytest.raises(KeyError):
            reference.fetch("nope", 0, 1)

    def test_lengths(self, reference):
        assert reference.length("2") == 5
        assert reference.total_length() == 15

    def test_intervals(self, reference):
        assert reference.intervals() == [("1", 0, 10), ("2", 0, 5)]

    def test_random(self):
        ref = ReferenceGenome.random({"a": 100, "b": 50},
                                     np.random.default_rng(3))
        assert ref.length("a") == 100
        assert ref.length("b") == 50
        assert set(ref.contig("a").sequence) <= set("ACGT")
