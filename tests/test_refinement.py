"""Unit tests for the refinement pipeline stages."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.genomics.cigar import Cigar
from repro.genomics.read import Read
from repro.genomics.reference import ReferenceGenome
from repro.genomics.simulate import SimulationProfile, simulate_sample
from repro.refinement.bqsr import (
    CYCLE_BUCKET,
    BqsrModel,
    fit_model,
    recalibrate,
)
from repro.refinement.duplicates import mark_duplicates
from repro.refinement.pipeline import RefinementPipeline
from repro.refinement.sort import is_coordinate_sorted, sort_reads


def make_read(name, chrom, pos, seq="ACGT", cigar=None, quals=None, **kwargs):
    quals = quals if quals is not None else np.full(len(seq), 30, np.uint8)
    return Read(name, chrom, pos, seq, quals,
                Cigar.parse(cigar or f"{len(seq)}M"), **kwargs)


class TestSort:
    def test_coordinate_order(self):
        ref = ReferenceGenome.from_dict({"1": "A" * 100, "2": "A" * 100})
        reads = [
            make_read("c", "2", 5),
            make_read("a", "1", 50),
            make_read("b", "1", 5),
            Read("u", None, 0, "ACGT", np.full(4, 20, np.uint8)),
        ]
        ordered = sort_reads(reads, ref)
        assert [r.name for r in ordered] == ["b", "a", "c", "u"]
        assert is_coordinate_sorted(ordered, ref)
        assert not is_coordinate_sorted(reads, ref)

    def test_stable_for_equal_coordinates(self):
        reads = [make_read("x", "1", 5), make_read("y", "1", 5)]
        assert [r.name for r in sort_reads(reads)] == ["x", "y"]

    @given(st.lists(st.tuples(st.sampled_from(["1", "2"]),
                              st.integers(0, 80)), max_size=30))
    @settings(max_examples=30, deadline=None)
    def test_sorted_invariant(self, coords):
        reads = [make_read(f"r{i}", c, p) for i, (c, p) in enumerate(coords)]
        ordered = sort_reads(reads)
        keys = [(r.chrom, r.pos) for r in ordered]
        assert keys == sorted(keys)


class TestDuplicates:
    def test_marks_all_but_best(self):
        low = make_read("low", "1", 10, quals=np.full(4, 10, np.uint8))
        high = make_read("high", "1", 10, quals=np.full(4, 40, np.uint8))
        other = make_read("other", "1", 50)
        marked, report = mark_duplicates([low, high, other])
        by_name = {r.name: r for r in marked}
        assert by_name["low"].is_duplicate
        assert not by_name["high"].is_duplicate
        assert not by_name["other"].is_duplicate
        assert report.duplicates_marked == 1
        assert report.duplicate_fraction == pytest.approx(1 / 3)

    def test_strand_separates_groups(self):
        fwd = make_read("f", "1", 10)
        rev = make_read("r", "1", 10, is_reverse=True)
        _, report = mark_duplicates([fwd, rev])
        assert report.duplicates_marked == 0

    def test_soft_clip_unclipped_start_grouping(self):
        plain = make_read("p", "1", 12, seq="ACGTAC", cigar="6M")
        clipped = make_read("c", "1", 14, seq="ACGTAC", cigar="2S4M")
        _, report = mark_duplicates([plain, clipped])
        assert report.duplicates_marked == 1

    def test_unmapped_never_marked(self):
        unmapped = Read("u", None, 0, "ACGT", np.full(4, 20, np.uint8))
        marked, report = mark_duplicates([unmapped, unmapped])
        assert report.duplicates_marked == 0


class TestBqsr:
    def test_model_moves_toward_empirical_rate(self):
        model = BqsrModel()
        # Reported Q30 but empirical error rate ~10% => recalibrated ~Q10.
        for _ in range(2000):
            model.observe(30, 5, False)
        for _ in range(200):
            model.observe(30, 5, True)
        recal = model.recalibrated_quality(30, 5)
        assert 9 <= recal <= 12

    def test_unobserved_bucket_keeps_reported_quality(self):
        model = BqsrModel()
        assert model.recalibrated_quality(25, 0) == 25

    def test_observe_batch_matches_scalar(self):
        scalar = BqsrModel()
        batch = BqsrModel()
        qs = np.array([30, 30, 20, 20], dtype=np.int64)
        cycles = np.array([0, 40, 0, 200])
        errors = np.array([True, False, False, True])
        for q, c, e in zip(qs, cycles, errors):
            scalar.observe(int(q), int(c), bool(e))
        batch.observe_batch(qs, cycles, errors)
        assert np.array_equal(scalar.observations, batch.observations)
        assert np.array_equal(scalar.errors, batch.errors)

    def test_recalibrate_end_to_end(self):
        profile = SimulationProfile(coverage=20, base_error_rate=0.02)
        sample = simulate_sample({"1": 10_000}, profile=profile, seed=13)
        recalibrated, model = recalibrate(sample.reads, sample.reference)
        assert len(recalibrated) == len(sample.reads)
        assert model.bucket_count() > 0
        # Scores changed somewhere (the simulator's plateau is optimistic
        # relative to its injected 2% error rate).
        changed = any(
            not np.array_equal(a.quals, b.quals)
            for a, b in zip(sample.reads, recalibrated)
        )
        assert changed


class TestPipeline:
    def test_runs_all_stages_in_order(self):
        profile = SimulationProfile(indel_rate=1e-3, coverage=20)
        sample = simulate_sample({"1": 12_000}, profile=profile, seed=17)
        result = RefinementPipeline(sample.reference).run(sample.reads)
        assert [s.stage for s in result.stages] == [
            "sort", "duplicate_marking", "indel_realignment",
            "base_quality_score_recalibration",
        ]
        assert result.total_seconds > 0
        assert result.duplicate_report is not None
        assert result.realigner_report is not None
        assert len(result.reads) == len(sample.reads)
        assert abs(sum(result.fraction(s.stage) for s in result.stages)
                   - 1.0) < 1e-9

    def test_accelerated_pipeline_matches_software(self):
        profile = SimulationProfile(indel_rate=1.5e-3, coverage=20)
        sample = simulate_sample({"1": 10_000}, profile=profile, seed=19)
        soft = RefinementPipeline(sample.reference).run(sample.reads)
        hard = RefinementPipeline(sample.reference,
                                  use_accelerator=True).run(sample.reads)
        for a, b in zip(soft.reads, hard.reads):
            assert a.pos == b.pos and str(a.cigar) == str(b.cigar)
