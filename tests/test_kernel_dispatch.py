"""Cross-kernel exactness and calibrated-dispatch tests.

Five exact kernels implement Algorithm 1 -- scalar, vectorized,
FFT-batched, bit-packed SWAR, and the compiled native tier -- and
:mod:`repro.engine.autotune` routes sites between them. Two properties
keep that sound:

- **exactness**: every kernel produces cell-identical ``(min_whd,
  min_idx)`` grids and identical ``SiteResult`` outputs on any site,
  including degenerate shapes (read as long as the consensus, a single
  read, no alternate consensuses, N bases, zero qualities);
- **dispatch semantics**: ``auto`` consults the persisted cost profile,
  the ``REPRO_KERNEL`` override applies to ``auto`` only, and an
  explicitly requested kernel always runs.

The native tier never *requires* a compiled backend: without one it
degrades to bitpack, so every parity test here runs (and must pass)
either way. Only the tests that poke a backend *directly* skip when
none is available.
"""

import os
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.autotune import (
    KERNELS,
    CostProfile,
    SiteFeatures,
    calibrate,
    choose_kernel,
    dispatch_realign,
    resolve_profile,
)
from repro.engine.batch import min_whd_grid_batched
from repro.engine.bitpack import min_whd_grid_bitpacked
from repro.engine.native import (
    min_whd_grid_native,
    native_available,
    realign_site_native,
)
from repro.realign.site import RealignmentSite
from repro.realign.whd import min_whd_grid, realign_site
from repro.workloads.generator import (
    BENCH_PROFILE,
    SiteProfile,
    synthesize_site,
)


class Sink:
    """Counter-only telemetry stand-in."""

    def __init__(self):
        self.counters = {}

    def count(self, name, delta=1):
        self.counters[name] = self.counters.get(name, 0) + int(delta)


def ragged_site(draw):
    """Adversarial site shapes for kernel parity.

    Reads may equal a consensus length exactly (n == m leaves one
    offset), sites may have a single read or no alternates, bases
    include ``N`` (matches only itself in every kernel), and qualities
    include 0.
    """
    num_reads = draw(st.integers(1, 5))
    read_lens = [draw(st.integers(1, 12)) for _ in range(num_reads)]
    longest = max(read_lens)
    num_cons = draw(st.integers(1, 4))
    cons = tuple(
        draw(st.text(alphabet="ACGTN", min_size=m, max_size=m))
        for m in (
            draw(st.integers(longest, longest + 24))
            for _ in range(num_cons)
        )
    )
    reads = tuple(
        draw(st.text(alphabet="ACGTN", min_size=n, max_size=n))
        for n in read_lens
    )
    quals = tuple(
        np.array(
            draw(st.lists(st.integers(0, 93), min_size=n, max_size=n)),
            dtype=np.uint8,
        )
        for n in read_lens
    )
    return RealignmentSite(chrom="c", start=draw(st.integers(0, 10_000)),
                           consensuses=cons, reads=reads, quals=quals)


def degenerate_sites():
    """The ISSUE's named degenerate shapes, plus word-boundary lengths."""
    rng = np.random.default_rng(99)
    letters = np.array(list("ACGT"))
    long_cons = "".join(rng.choice(letters, size=70))
    boundary_reads = tuple(
        "".join(rng.choice(letters, size=n)) for n in (31, 32, 33, 64, 65)
    )
    return [
        # n == m: exactly one offset per pair
        RealignmentSite("c", 0, ("ACGTACGT", "TGCATGCA"),
                        ("ACGTACGT",), ([7] * 8,)),
        # single read
        RealignmentSite("c", 5, ("ACGTACGTAAGG", "ACGGACGTAAGG"),
                        ("GTAC",), ([3, 0, 9, 1],)),
        # empty alternates: only the reference consensus
        RealignmentSite("c", 0, ("ACGTACGTACGT",),
                        ("CGTA", "TACG"), ([5] * 4, [6] * 4)),
        # reads straddling the 32-base packed-word boundary
        RealignmentSite(
            "c", 0, (long_cons, long_cons[1:] + "A"), boundary_reads,
            tuple([int(q) for q in rng.integers(0, 94, size=len(r))]
                  for r in boundary_reads),
        ),
    ]


def assert_all_kernels_agree(site):
    ref_w, ref_i = min_whd_grid(site, vectorized=False)
    for label, (mw, mi) in {
        "vector": min_whd_grid(site, vectorized=True),
        "fft": min_whd_grid_batched(site, prefilter=False),
        "bitpack": min_whd_grid_bitpacked(site),
        "native": min_whd_grid_native(site),
    }.items():
        np.testing.assert_array_equal(mw, ref_w, err_msg=f"{label} min_whd")
        np.testing.assert_array_equal(mi, ref_i, err_msg=f"{label} min_idx")


class TestCrossKernelExactness:
    @given(st.data())
    @settings(max_examples=80, deadline=None)
    def test_grids_cell_identical(self, data):
        assert_all_kernels_agree(ragged_site(data.draw))

    @given(st.data(), st.sampled_from(["similarity", "absdiff"]))
    @settings(max_examples=40, deadline=None)
    def test_site_results_same_outputs(self, data, scoring):
        site = ragged_site(data.draw)
        want = realign_site(site, scoring=scoring)
        for kernel in KERNELS:
            got = dispatch_realign(site, kernel=kernel, scoring=scoring)
            assert got.same_outputs(want), kernel

    @pytest.mark.parametrize("index", range(len(degenerate_sites())))
    def test_degenerate_shapes(self, index):
        site = degenerate_sites()[index]
        assert_all_kernels_agree(site)
        want = realign_site(site)
        for kernel in KERNELS:
            assert dispatch_realign(site, kernel=kernel).same_outputs(want)

    @given(st.integers(0, 200))
    @settings(max_examples=15, deadline=None)
    def test_synthesized_sites(self, seed):
        site = synthesize_site(np.random.default_rng(seed), BENCH_PROFILE,
                               complexity=0.5)
        want = realign_site(site)
        for kernel in ("vector", "fft", "bitpack", "native", "auto"):
            assert dispatch_realign(site, kernel=kernel).same_outputs(want)


class TestDispatchSemantics:
    def site(self):
        return synthesize_site(np.random.default_rng(0), BENCH_PROFILE)

    def test_unknown_kernel_rejected(self):
        with pytest.raises(ValueError, match="unknown kernel"):
            dispatch_realign(self.site(), kernel="simd")

    def test_auto_emits_choice_and_misprediction_counters(self, monkeypatch):
        # The CI job that forces REPRO_KERNEL must not defeat the
        # profile-consulting path this test is about.
        monkeypatch.delenv("REPRO_KERNEL", raising=False)
        sink = Sink()
        dispatch_realign(self.site(), kernel="auto", telemetry=sink)
        chosen = [k for k in sink.counters if k.startswith("kernel.chosen.")]
        assert len(chosen) == 1
        assert chosen[0].split(".")[-1] in KERNELS
        assert "kernel.predicted_vs_actual" in sink.counters

    def test_fixed_kernel_emits_choice_but_no_prediction(self):
        sink = Sink()
        dispatch_realign(self.site(), kernel="bitpack", telemetry=sink)
        assert sink.counters.get("kernel.chosen.bitpack") == 1
        assert "kernel.predicted_vs_actual" not in sink.counters

    def test_env_override_applies_to_auto_only(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL", "scalar")
        site = self.site()
        sink = Sink()
        dispatch_realign(site, kernel="auto", telemetry=sink)
        assert sink.counters.get("kernel.chosen.scalar") == 1
        sink = Sink()
        dispatch_realign(site, kernel="bitpack", telemetry=sink)
        assert sink.counters.get("kernel.chosen.bitpack") == 1

    def test_env_override_validated(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL", "warp")
        with pytest.raises(ValueError, match="REPRO_KERNEL"):
            dispatch_realign(self.site(), kernel="auto")

    def test_choose_kernel_is_deterministic(self):
        profile = resolve_profile()
        site = self.site()
        picks = {choose_kernel(site, profile) for _ in range(5)}
        assert len(picks) == 1
        assert picks.pop() in KERNELS


class TestCostProfile:
    def test_committed_profile_loads_and_covers_all_kernels(self):
        profile = resolve_profile()
        assert set(profile.kernels()) == set(KERNELS)
        f = SiteFeatures.from_site(
            synthesize_site(np.random.default_rng(1), BENCH_PROFILE)
        )
        for kernel in KERNELS:
            assert profile.predict(kernel, f) >= 0.0

    def test_json_round_trip(self):
        profile = resolve_profile()
        clone = CostProfile.from_json(profile.to_json())
        assert clone.coefficients == profile.coefficients

    def test_bad_version_rejected(self):
        with pytest.raises(ValueError, match="version"):
            CostProfile.from_json('{"version": 9, "kernels": {}}')

    def test_unknown_kernel_rejected(self):
        with pytest.raises(ValueError, match="unknown kernel"):
            CostProfile.from_json(
                '{"version": 1, "kernels": {"warp": [1.0]}}'
            )

    def test_calibrate_smoke(self):
        """A tiny calibration run yields nonnegative, usable coefficients."""
        rng = np.random.default_rng(7)
        sites = [synthesize_site(rng, BENCH_PROFILE, complexity=c)
                 for c in (0.1, 0.3, 0.6)]
        profile = calibrate(sites=sites, repeats=1)
        # The native tier only yields timing rows when a compiled
        # backend is usable on this host; the fit covers it exactly
        # when it does.
        expected = set(KERNELS) if native_available() \
            else set(KERNELS) - {"native"}
        assert set(profile.kernels()) == expected
        for coef in profile.coefficients.values():
            assert all(c >= 0.0 for c in coef)
        f = SiteFeatures.from_site(sites[0])
        assert profile.choose(f) in KERNELS


class TestEngineKernelWiring:
    def sites(self):
        rng = np.random.default_rng(3)
        return [synthesize_site(rng, BENCH_PROFILE, complexity=0.4)
                for _ in range(6)]

    @pytest.mark.parametrize(
        "kernel", ["auto", "vector", "fft", "bitpack", "native"]
    )
    def test_engine_results_identical_across_kernels(self, kernel):
        from repro.engine import Engine, EngineConfig

        sites = self.sites()
        want = [realign_site(site) for site in sites]
        got = Engine(EngineConfig(kernel=kernel, batch=2)).run_sites(sites)
        assert all(g.same_outputs(w) for g, w in zip(got, want))

    def test_memo_pins_the_fft_kernel(self):
        from repro.engine import Engine, EngineConfig
        from repro.telemetry import Telemetry

        sites = self.sites()
        session = Telemetry(label="memo-pin")
        config = EngineConfig(kernel="vector", memo_capacity=64, batch=3)
        got = Engine(config).run_sites(sites, telemetry=session)
        flat = session.counters.flat()
        assert flat.get("kernel.chosen.fft") == len(sites)
        assert "kernel.chosen.vector" not in flat
        want = [realign_site(site) for site in sites]
        assert all(g.same_outputs(w) for g, w in zip(got, want))

    def test_streaming_engine_honours_kernel(self):
        from repro.engine import EngineConfig, StreamingEngine
        from repro.telemetry import Telemetry

        sites = self.sites()
        session = Telemetry(label="stream-kernel")
        engine = StreamingEngine(EngineConfig(kernel="bitpack", batch=2))
        got = engine.run_sites(sites, telemetry=session)
        assert (session.counters.flat().get("kernel.chosen.bitpack")
                == len(sites))
        want = [realign_site(site) for site in sites]
        assert all(g.same_outputs(w) for g, w in zip(got, want))


class TestDeprecatedVectorizedFlag:
    def test_warns_and_maps_to_fixed_kernels(self):
        from repro.realign.realigner import IndelRealigner

        with pytest.warns(DeprecationWarning, match="vectorized"):
            realigner = IndelRealigner(None, vectorized=True)
        assert realigner.kernel == "vector"
        with pytest.warns(DeprecationWarning, match="vectorized"):
            realigner = IndelRealigner(None, vectorized=False)
        assert realigner.kernel == "scalar"

    def test_explicit_kernel_wins_over_flag(self):
        from repro.realign.realigner import IndelRealigner

        with pytest.warns(DeprecationWarning):
            realigner = IndelRealigner(None, vectorized=False,
                                       kernel="bitpack")
        assert realigner.kernel == "bitpack"


class TestPopcountFallback:
    """The numpy<2.0 byte-LUT popcount must preserve leading dims.

    The screening passes call ``_popcount_rows`` on both ``(K, W)``
    pair masks and the grouped ``(C, K, G, Wr)`` tensor. An earlier
    fallback reshaped to ``(shape[0], -1)``, flattening the 4-D tensor
    to ``(C,)`` and crashing the default (auto-dispatched) realign path
    on numpy 1.x, so these run the LUT path explicitly on numpy>=2.0
    hosts too.
    """

    @pytest.mark.parametrize(
        "shape", [(2,), (5, 2), (4, 1), (3, 4, 6, 2), (2, 1, 3, 1)]
    )
    def test_lut_matches_bit_counting_on_any_rank(self, shape):
        from repro.engine import bitpack

        rng = np.random.default_rng(42)
        words = rng.integers(0, np.iinfo(np.uint64).max, size=shape,
                             dtype=np.uint64, endpoint=True)
        got = bitpack._popcount_rows_lut(words)
        want = np.array(
            [sum(bin(int(w)).count("1") for w in row)
             for row in words.reshape(-1, shape[-1])],
            dtype=np.int64,
        ).reshape(shape[:-1])
        assert np.shape(got) == shape[:-1]
        np.testing.assert_array_equal(got, want)

    def test_lut_handles_noncontiguous_input(self):
        from repro.engine import bitpack

        words = np.random.default_rng(7).integers(
            0, 1 << 63, size=(6, 4), dtype=np.uint64
        )
        view = words.T  # non-contiguous: exercises ascontiguousarray
        np.testing.assert_array_equal(
            bitpack._popcount_rows_lut(view),
            bitpack._popcount_rows_lut(np.ascontiguousarray(view)),
        )

    def test_full_kernel_exact_with_fallback_forced(self, monkeypatch):
        from repro.engine import bitpack
        from repro.experiments.figure4 import build_site

        monkeypatch.setattr(bitpack, "_popcount_rows",
                            bitpack._popcount_rows_lut)
        assert_all_kernels_agree(build_site())
        for site in degenerate_sites():
            assert_all_kernels_agree(site)
        # Grouped uniform-length sites drive the 4-D (C, K, G, Wr)
        # screening tensor -- the shape the old fallback flattened.
        uniform = SiteProfile(
            name="uniform", mean_consensuses=4.0, mean_reads=48.0,
            read_length_range=(40, 40), window_slack_mean=4.0,
            read_tail_sigma=0.0,
        )
        for seed in (5, 6):
            site = synthesize_site(np.random.default_rng(seed), uniform)
            want = realign_site(site)
            got = dispatch_realign(site, kernel="bitpack")
            assert got.same_outputs(want)


class TestNativeKernel:
    """The compiled tier's backend machinery and fallback semantics.

    Parity of native *output* with the other kernels is covered above
    (it holds with or without a backend); this class tests the pieces
    unique to the tier -- forced backend paths, warmup, and the
    degrade-to-bitpack contract.
    """

    @pytest.fixture()
    def fresh_backend(self):
        """Re-probe the backend around each test and restore after."""
        from repro.engine import native

        native.reset_backend()
        yield native
        native.reset_backend()

    needs_backend = pytest.mark.skipif(
        not native_available(),
        reason="no compiled native backend (numba or C compiler) here",
    )

    @needs_backend
    def test_backend_name_is_reported(self):
        from repro.engine.native import native_backend_name

        assert native_backend_name() in ("numba", "cc")

    @needs_backend
    def test_warmup_is_idempotent_and_true(self):
        from repro.engine.native import warmup_native

        assert warmup_native() is True
        assert warmup_native() is True

    @needs_backend
    @pytest.mark.parametrize("force_swar", [True, False])
    def test_both_compiled_paths_match_scalar(self, force_swar):
        # Force the SWAR pipeline and the compiled scalar-fallback grid
        # in turn; the volume heuristic that picks between them must
        # never be able to change an output.
        from repro.engine import native

        backend = native.get_backend()
        for site in degenerate_sites():
            ref_w, ref_i = min_whd_grid(site, vectorized=False)
            mw, mi, _ = native._grids_native(site, backend,
                                             force_swar=force_swar)
            np.testing.assert_array_equal(mw, ref_w)
            np.testing.assert_array_equal(mi, ref_i)

    @needs_backend
    def test_screening_counters_are_consistent(self):
        sink = Sink()
        site = synthesize_site(np.random.default_rng(11), BENCH_PROFILE)
        realign_site_native(site, telemetry=sink)
        assert sink.counters.get("kernel.sites") == 1
        screened = sink.counters.get("native.offsets_screened")
        exact = sink.counters.get("native.offsets_exact")
        assert screened == sink.counters.get("kernel.offsets_evaluated")
        assert 0 < exact <= screened
        assert "kernel.native.unavailable" not in sink.counters

    def test_off_switch_degrades_to_bitpack(self, monkeypatch,
                                            fresh_backend):
        monkeypatch.setenv("REPRO_NATIVE", "off")
        fresh_backend.reset_backend()
        assert not fresh_backend.native_available()
        sink = Sink()
        site = synthesize_site(np.random.default_rng(12), BENCH_PROFILE)
        got = fresh_backend.realign_site_native(site, telemetry=sink)
        assert sink.counters.get("kernel.native.unavailable") == 1
        # Bitpack ran underneath: its screening counters are present
        # and the output is still exact.
        assert "bitpack.offsets_screened" in sink.counters
        assert got.same_outputs(realign_site(site))

    def test_off_switch_keeps_dispatch_working(self, monkeypatch,
                                               fresh_backend):
        # --kernel native (and auto routing to native) must stay a
        # working request, not an error, when the tier is disabled.
        monkeypatch.setenv("REPRO_NATIVE", "off")
        fresh_backend.reset_backend()
        site = synthesize_site(np.random.default_rng(13), BENCH_PROFILE)
        got = dispatch_realign(site, kernel="native")
        assert got.same_outputs(realign_site(site))

    def test_warmup_reports_false_when_disabled(self, monkeypatch,
                                                fresh_backend):
        monkeypatch.setenv("REPRO_NATIVE", "off")
        fresh_backend.reset_backend()
        assert fresh_backend.warmup_native() is False

    @needs_backend
    def test_grid_entry_point_matches_reference(self):
        for site in degenerate_sites():
            ref_w, ref_i = min_whd_grid(site, vectorized=False)
            mw, mi = min_whd_grid_native(site)
            np.testing.assert_array_equal(mw, ref_w)
            np.testing.assert_array_equal(mi, ref_i)


class TestProfilePersistencePaths:
    """``--autotune`` must not require a writable package directory."""

    def test_writable_path_prefers_committed_default(self):
        from repro.engine import autotune

        # The source checkout is writable, so the committed file wins.
        assert (autotune.writable_profile_path()
                == autotune.DEFAULT_PROFILE_PATH)

    def test_writable_path_falls_back_to_user_cache(
        self, monkeypatch, tmp_path
    ):
        from repro.engine import autotune

        monkeypatch.setenv("XDG_CACHE_HOME", str(tmp_path))
        real_access = os.access

        def deny_package_dir(path, mode):
            if Path(path) == autotune.DEFAULT_PROFILE_PATH.parent:
                return False  # simulate read-only site-packages
            return real_access(path, mode)

        monkeypatch.setattr(autotune.os, "access", deny_package_dir)
        path = autotune.writable_profile_path()
        assert path == tmp_path / "repro" / "autotune_profile.json"
        assert path.parent.is_dir()  # created, ready for save()

    def test_resolve_profile_prefers_user_cache(
        self, monkeypatch, tmp_path
    ):
        from repro.engine import autotune

        monkeypatch.delenv("REPRO_AUTOTUNE_PROFILE", raising=False)
        monkeypatch.setenv("XDG_CACHE_HOME", str(tmp_path))
        cache = tmp_path / "repro" / "autotune_profile.json"
        cache.parent.mkdir(parents=True)
        base = CostProfile.load(autotune.DEFAULT_PROFILE_PATH)
        CostProfile(
            coefficients=base.coefficients,
            meta={"source": "user-cache-test"},
        ).save(cache)
        monkeypatch.setattr(autotune, "_cached_default", None)
        assert resolve_profile().meta.get("source") == "user-cache-test"

    def test_resolve_profile_env_beats_user_cache(
        self, monkeypatch, tmp_path
    ):
        from repro.engine import autotune

        monkeypatch.setenv("XDG_CACHE_HOME", str(tmp_path))
        cache = tmp_path / "repro" / "autotune_profile.json"
        cache.parent.mkdir(parents=True)
        base = CostProfile.load(autotune.DEFAULT_PROFILE_PATH)
        CostProfile(coefficients=base.coefficients,
                    meta={"source": "cache"}).save(cache)
        env_path = tmp_path / "env_profile.json"
        CostProfile(coefficients=base.coefficients,
                    meta={"source": "env"}).save(env_path)
        monkeypatch.setenv("REPRO_AUTOTUNE_PROFILE", str(env_path))
        monkeypatch.setattr(autotune, "_cached_default", None)
        assert resolve_profile().meta.get("source") == "env"
