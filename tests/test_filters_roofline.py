"""Unit tests for somatic call filters and the roofline model."""

import numpy as np
import pytest

from repro.perf.roofline import RooflineModel, RooflinePoint, summarize
from repro.variants.caller import VariantCall
from repro.variants.filters import FilterConfig, apply_filters
from repro.workloads.generator import BENCH_PROFILE, REAL_PROFILE, synthesize_site


def call(pos=100, depth=30, alt=10, quality=90.0, chrom="1", ref="A",
         alt_allele="T"):
    return VariantCall(chrom, pos, ref, alt_allele, quality, depth, alt)


class TestFilters:
    def test_passes_clean_call(self):
        report = apply_filters([call()])
        assert len(report.passed) == 1
        assert report.pass_fraction == 1.0

    def test_depth_and_support_floors(self):
        report = apply_filters([call(depth=3), call(alt=1), call(quality=5)])
        assert report.passed == []
        reasons = report.rejections_by_reason()
        assert reasons == {"low_depth": 1, "low_alt_support": 1,
                           "low_quality": 1}

    def test_germline_fraction_filter(self):
        config = FilterConfig(max_allele_fraction_for_somatic=0.4)
        report = apply_filters([call(alt=25, depth=30)], config)
        assert report.rejections_by_reason() == {"germline_fraction": 1}
        # Disabled by default.
        assert apply_filters([call(alt=25, depth=30)]).passed

    def test_clustered_events_rejected(self):
        calls = [call(pos=100 + i) for i in range(6)]
        report = apply_filters(calls)
        assert report.rejections_by_reason() == {"clustered_events": 6}

    def test_sparse_calls_not_clustered(self):
        calls = [call(pos=100), call(pos=400), call(pos=900)]
        assert len(apply_filters(calls).passed) == 3

    def test_cluster_respects_chromosomes(self):
        calls = [call(pos=100, chrom=str(c)) for c in range(1, 7)]
        assert len(apply_filters(calls).passed) == 6

    def test_config_validation(self):
        with pytest.raises(ValueError):
            FilterConfig(min_depth=0)
        with pytest.raises(ValueError):
            FilterConfig(cluster_window=0)


class TestRoofline:
    def test_compute_roof(self):
        model = RooflineModel()
        assert model.compute_roof == 32 * 32 * 125e6
        # Ridge: 1.28e11 / 1.6e10 = 8 comparisons per byte.
        assert model.ridge_intensity() == pytest.approx(8.0)

    def test_low_intensity_is_memory_bound(self):
        model = RooflineModel()
        point = model.place("streaming", comparisons=1e9, dram_bytes=1e9)
        assert not point.compute_bound
        assert point.achievable_rate == pytest.approx(1.6e10)

    def test_ir_sites_are_compute_bound(self):
        """The paper's claim: IR is compute-bound on this hardware."""
        model = RooflineModel()
        rng = np.random.default_rng(2)
        points = [
            model.place_site(synthesize_site(rng, profile))
            for profile in (BENCH_PROFILE, REAL_PROFILE)
            for _ in range(4)
        ]
        result = summarize(points)
        assert result["compute_bound_fraction"] == 1.0
        assert result["min_intensity"] > model.ridge_intensity()

    def test_validation(self):
        model = RooflineModel()
        with pytest.raises(ValueError):
            model.place("bad", comparisons=0, dram_bytes=10)
        with pytest.raises(ValueError):
            model.memory_bound_rate(0)

    def test_summarize_empty(self):
        assert summarize([])["compute_bound_fraction"] == 0.0
