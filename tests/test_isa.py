"""Unit tests for the RoCC instruction set (Table I)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.isa import (
    IR_OPCODE,
    BufferId,
    IrFunct,
    IsaError,
    RoccCommand,
    commands_per_target,
    decode_instruction,
    encode_instruction,
    ir_set_addr,
    ir_set_len,
    ir_set_size,
    ir_set_target,
    ir_start,
    target_command_stream,
)
from repro.realign.site import RealignmentSite


class TestEncoding:
    def test_opcode_in_low_bits(self):
        word = encode_instruction(ir_start(0))
        assert word & 0x7F == IR_OPCODE

    def test_funct_in_high_bits(self):
        word = encode_instruction(ir_set_size(0, 4, 16))
        assert (word >> 25) & 0x7F == IrFunct.SET_SIZE

    def test_unit_id_in_dest_field(self):
        word = encode_instruction(ir_start(13))
        assert (word >> 7) & 0x1F == 13

    def test_xd_only_on_start(self):
        assert ir_start(0).xd
        assert not ir_set_addr(0, BufferId.READ_BASES, 0).xd

    @given(st.sampled_from(list(IrFunct)), st.integers(0, 31),
           st.integers(0, 1 << 30), st.integers(0, 1 << 30),
           st.booleans(), st.booleans(), st.booleans())
    @settings(max_examples=60, deadline=None)
    def test_roundtrip(self, funct, unit, rs1, rs2, xs1, xs2, xd):
        command = RoccCommand(funct=funct, unit_id=unit, rs1_value=rs1,
                              rs2_value=rs2, xs1=xs1, xs2=xs2, xd=xd)
        decoded = decode_instruction(encode_instruction(command), rs1, rs2)
        assert decoded == command

    def test_decode_rejects_wrong_opcode(self):
        with pytest.raises(IsaError):
            decode_instruction(0b0110011)

    def test_decode_rejects_unknown_funct(self):
        word = (99 << 25) | IR_OPCODE
        with pytest.raises(IsaError):
            decode_instruction(word)

    def test_decode_rejects_oversized_word(self):
        with pytest.raises(IsaError):
            decode_instruction(1 << 40)


class TestCommandBuilders:
    def test_set_addr_carries_buffer_and_address(self):
        cmd = ir_set_addr(2, BufferId.OUT_POSITIONS, 0xBEEF)
        assert cmd.rs1_value == int(BufferId.OUT_POSITIONS)
        assert cmd.rs2_value == 0xBEEF

    def test_validation(self):
        with pytest.raises(IsaError):
            ir_set_addr(2, BufferId.READ_BASES, -1)
        with pytest.raises(IsaError):
            ir_set_size(0, 0, 4)
        with pytest.raises(IsaError):
            ir_set_len(0, 0, 0)
        with pytest.raises(IsaError):
            ir_set_target(0, -5)
        with pytest.raises(IsaError):
            RoccCommand(IrFunct.START, unit_id=40)


class TestCommandStream:
    def make_site(self, num_cons=3):
        consensuses = tuple("ACGTACGT" + "A" * i for i in range(num_cons))
        return RealignmentSite(
            chrom="22", start=5_000, consensuses=consensuses,
            reads=("ACGT",), quals=(np.full(4, 30, np.uint8),),
        )

    def test_stream_structure(self):
        site = self.make_site(3)
        addrs = {b: 64 * i for i, b in enumerate(BufferId)}
        stream = target_command_stream(7, site, addrs)
        # 5 addr + 1 target + 1 size + 3 len + 1 start.
        assert len(stream) == 11
        assert [c.funct for c in stream[:5]] == [IrFunct.SET_ADDR] * 5
        assert stream[5].funct is IrFunct.SET_TARGET
        assert stream[5].rs1_value == 5_000
        assert stream[6].funct is IrFunct.SET_SIZE
        assert (stream[6].rs1_value, stream[6].rs2_value) == (3, 1)
        assert [c.funct for c in stream[7:10]] == [IrFunct.SET_LEN] * 3
        assert stream[7].rs2_value == 8  # reference consensus length
        assert stream[-1].funct is IrFunct.START
        assert all(c.unit_id == 7 for c in stream)

    def test_commands_per_target(self):
        assert commands_per_target(1) == 9
        assert commands_per_target(32) == 40
        with pytest.raises(IsaError):
            commands_per_target(0)
