"""The serving plane: request coalescing, backpressure, byte-identity.

Four layers under test:

- the pure pieces (wire protocol, percentile math, region-job
  partitioning, seeded load schedules, the virtual-time queue model) --
  deterministic, no sockets, exact expected values;
- the :class:`RealignmentService` request plane against stub engines --
  admission control, queue-mode parking, deadlines, graceful drain,
  coalescing, all driven with ``asyncio.run`` (no pytest-asyncio);
- the TCP server/client/loadgen stack against the real realigner --
  the headline invariant: served output is byte-identical to the batch
  path;
- chaos composition -- ``REPRO_WORKER_FAULT_RATE`` worker faults under
  live serving traffic still produce kernel-exact results.
"""

import asyncio
import threading
from dataclasses import replace

import numpy as np
import pytest

from repro.engine import Engine, EngineConfig, StreamingEngine
from repro.genomics.samlite import format_read
from repro.genomics.simulate import simulate_sample
from repro.realign.realigner import IndelRealigner
from repro.resilience.workers import WorkerRecovery
from repro.serve.client import ServiceClient
from repro.serve.jobs import partition_jobs
from repro.serve.loadgen import run_loadgen, simulate_load
from repro.serve.metrics import latency_summary, percentile
from repro.serve.protocol import (
    ProtocolError,
    decode_message,
    encode_message,
    error_response,
)
from repro.serve.request import (
    DeadlineExceeded,
    ServiceClosed,
    ServiceConfig,
    ServiceSaturated,
)
from repro.serve.server import RealignmentServer
from repro.serve.service import RealignmentService
from repro.workloads.generator import synthesize_site
from repro.workloads.serving import (
    LoadProfile,
    apply_preemption_replay,
    synthesize_load_schedule,
)


def _sample(lengths=None, seed=5):
    return simulate_sample(lengths or {"chrS": 4000}, seed=seed)


def _sites(n, seed=2019, complexity=0.5):
    rng = np.random.default_rng(seed)
    return [synthesize_site(rng, complexity=complexity, start=i * 2000)
            for i in range(n)]


# ---------------------------------------------------------------------
# pure pieces
# ---------------------------------------------------------------------
class TestProtocol:
    def test_round_trip(self):
        message = {"op": "ping", "id": 3, "sam": ["a\tb"]}
        assert decode_message(encode_message(message)) == message

    def test_frames_are_single_lines(self):
        frame = encode_message({"op": "stats", "id": 1})
        assert frame.endswith(b"\n") and frame.count(b"\n") == 1

    def test_malformed_frames_raise(self):
        with pytest.raises(ProtocolError):
            decode_message(b"{not json")
        with pytest.raises(ProtocolError):
            decode_message(b"[1, 2]\n")

    def test_error_response_statuses(self):
        response = error_response(7, "rejected", "full")
        assert response == {"id": 7, "ok": False, "status": "rejected",
                            "error": "full"}
        with pytest.raises(ValueError):
            error_response(7, "ok", "not a failure")
        with pytest.raises(ValueError):
            error_response(7, "weird", "unknown status")


class TestPercentiles:
    def test_matches_numpy_linear_interpolation(self):
        rng = np.random.default_rng(7)
        values = list(rng.exponential(1.0, size=101))
        for q in (0, 10, 50, 95, 99, 100):
            assert percentile(values, q) == pytest.approx(
                float(np.percentile(values, q)), abs=1e-12,
            )

    def test_summary_orders_percentiles(self):
        rng = np.random.default_rng(11)
        summary = latency_summary(list(rng.exponential(0.01, size=200)))
        assert (summary["p50_ms"] <= summary["p95_ms"]
                <= summary["p99_ms"] <= summary["max_ms"])
        assert summary["count"] == 200.0

    def test_degenerate_inputs(self):
        assert latency_summary([]) == {}
        with pytest.raises(ValueError):
            percentile([], 50)
        with pytest.raises(ValueError):
            percentile([1.0], 101)


class TestPartitionJobs:
    def test_every_index_exactly_once(self):
        sample = _sample({"chrS": 6000, "chrT": 3000})
        jobs = partition_jobs(sample.reads, sample.reference)
        indices = [i for job in jobs for i in job.indices]
        assert sorted(indices) == list(range(len(sample.reads)))
        assert len(indices) == len(set(indices))

    def test_reads_keep_input_order_within_jobs(self):
        sample = _sample()
        for job in partition_jobs(sample.reads, sample.reference):
            assert list(job.indices) == sorted(job.indices)
            for index, read in zip(job.indices, job.reads):
                assert sample.reads[index] is read

    def test_gap_cuts_split_contigs(self):
        sample = _sample({"chrS": 4000})
        reads = list(sample.reads)
        # Clone the contig's reads far to the right: well past the
        # default 4096-base frontier gap, so they must land in a
        # separate job on the same contig.
        shifted = [replace(r, name=f"{r.name}/far", pos=r.pos + 20_000)
                   for r in reads if r.is_mapped]
        jobs = partition_jobs(reads + shifted, sample.reference)
        mapped_jobs = [j for j in jobs if j.chrom != "*"]
        assert len(mapped_jobs) >= 2
        spans = sorted((min(r.pos for r in j.reads),
                        max(r.end for r in j.reads))
                       for j in mapped_jobs)
        for (_, end), (start, _) in zip(spans, spans[1:]):
            assert start > end + 4096

    def test_unmapped_reads_form_one_final_job(self):
        sample = _sample()
        reads = list(sample.reads)
        unmapped = replace(reads[0], name="lost", chrom=None, cigar=None,
                           pos=0)
        jobs = partition_jobs(reads + [unmapped], sample.reference)
        assert jobs[-1].chrom == "*"
        assert jobs[-1].indices == (len(reads),)


class TestLoadSchedules:
    def test_same_seed_same_schedule(self):
        profile = LoadProfile(tenants=3, requests_per_tenant=5)
        first = synthesize_load_schedule(profile, num_jobs=4, seed=13)
        again = synthesize_load_schedule(profile, num_jobs=4, seed=13)
        assert first == again
        assert first != synthesize_load_schedule(profile, 4, seed=14)

    def test_adding_a_tenant_never_perturbs_existing_arrivals(self):
        small = LoadProfile(tenants=2, requests_per_tenant=4)
        large = LoadProfile(tenants=3, requests_per_tenant=4)
        def arrivals(profile, tenant):
            return [r.arrival_s
                    for r in synthesize_load_schedule(profile, 2, seed=3)
                    if r.tenant == tenant]
        for tenant in ("tenant0", "tenant1"):
            assert arrivals(small, tenant) == arrivals(large, tenant)

    def test_round_robin_covers_every_job(self):
        profile = LoadProfile(tenants=2, requests_per_tenant=4)
        schedule = synthesize_load_schedule(profile, num_jobs=5, seed=1)
        assert {r.job for r in schedule} == set(range(5))

    def test_preemption_replay_is_deterministic_and_tagged(self):
        profile = LoadProfile(tenants=4, requests_per_tenant=6,
                              preempt_rate=0.9, restart_delay_s=0.02)
        schedule = synthesize_load_schedule(profile, 3, seed=5)
        replayed, hit = apply_preemption_replay(schedule, profile, seed=5)
        again, hit2 = apply_preemption_replay(schedule, profile, seed=5)
        assert (replayed, hit) == (again, hit2)
        assert hit >= 1
        retries = [r for r in replayed if r.is_retry]
        assert retries, "a 90% preemption wave must delay some requests"
        # The replay only shifts times: the (tenant, job) workload is
        # preserved, untouched requests appear verbatim, and every
        # retry fires at or after its instance's reclaim + restart.
        assert (sorted((r.tenant, r.job) for r in replayed)
                == sorted((r.tenant, r.job) for r in schedule))
        originals = set((r.tenant, r.job, r.arrival_s) for r in schedule)
        for request in replayed:
            if not request.is_retry:
                assert (request.tenant, request.job,
                        request.arrival_s) in originals
        cut_plus_delay = {}
        for retry in retries:
            instance = retry.retry_of_instance
            cut_plus_delay.setdefault(instance, retry.arrival_s)
            cut_plus_delay[instance] = min(cut_plus_delay[instance],
                                           retry.arrival_s)
        for retry in retries:
            assert retry.arrival_s >= cut_plus_delay[retry.retry_of_instance]

    def test_zero_rate_is_identity(self):
        profile = LoadProfile(tenants=2, requests_per_tenant=2)
        schedule = synthesize_load_schedule(profile, 2, seed=0)
        assert apply_preemption_replay(schedule, profile, 0) == (schedule, 0)


class TestSimulateLoad:
    def test_matches_hand_computed_fifo_model(self):
        profile = LoadProfile(tenants=2, requests_per_tenant=3,
                              mean_interarrival_s=0.004)
        job_sites = [3, 1]
        per_site, overhead = 0.002, 0.001
        report = simulate_load(profile, job_sites, seed=21,
                               per_site_s=per_site, overhead_s=overhead)
        # Replay the same schedule through the documented arithmetic.
        schedule = synthesize_load_schedule(profile, len(job_sites), 21)
        free_at, expected = 0.0, []
        for request in schedule:
            service = overhead + job_sites[request.job] * per_site
            completion = max(request.arrival_s, free_at) + service
            free_at = completion
            expected.append(completion - request.arrival_s)
        assert report.completed == len(schedule)
        assert report.latency == latency_summary(expected)
        assert report.wall_s == free_at

    def test_identical_across_runs(self):
        profile = LoadProfile(tenants=3, requests_per_tenant=8,
                              mean_interarrival_s=0.002)
        first = simulate_load(profile, [4, 2, 1], seed=9)
        again = simulate_load(profile, [4, 2, 1], seed=9)
        assert first.to_dict() == again.to_dict()
        assert (first.latency["p50_ms"] <= first.latency["p95_ms"]
                <= first.latency["p99_ms"])

    def test_tight_deadlines_expire_instead_of_serving(self):
        profile = LoadProfile(tenants=1, requests_per_tenant=10,
                              mean_interarrival_s=0.0001,
                              deadline_s=0.012)
        report = simulate_load(profile, [10], seed=3,
                               per_site_s=0.001, overhead_s=0.001)
        assert report.expired > 0
        assert report.completed + report.expired == report.requests


# ---------------------------------------------------------------------
# the request plane against stub engines
# ---------------------------------------------------------------------
class _EchoEngine:
    """Returns the sites themselves as their results."""

    def __init__(self):
        self.calls = 0
        self.batch_sizes = []

    def run_sites(self, sites, telemetry=None):
        self.calls += 1
        self.batch_sizes.append(len(sites))
        return list(sites)


class _GateEngine(_EchoEngine):
    """Blocks inside run_sites until the test releases it."""

    def __init__(self):
        super().__init__()
        self.entered = threading.Event()
        self.release = threading.Event()

    def run_sites(self, sites, telemetry=None):
        self.entered.set()
        assert self.release.wait(20.0), "test never released the gate"
        return super().run_sites(sites, telemetry)


class _GateRealEngine(_GateEngine):
    """Gate that then runs the real inline engine (server-path tests)."""

    def __init__(self):
        super().__init__()
        self._inner = Engine(EngineConfig())

    def run_sites(self, sites, telemetry=None):
        self.entered.set()
        assert self.release.wait(20.0), "test never released the gate"
        self.calls += 1
        self.batch_sizes.append(len(sites))
        return self._inner.run_sites(sites, telemetry)


class TestServiceRequestPlane:
    def test_concurrent_requests_coalesce_into_one_batch(self):
        engine = _EchoEngine()

        async def scenario():
            service = RealignmentService(engine, ServiceConfig(
                coalesce_sites=64, coalesce_wait_ms=50.0,
            ))
            await service.start()
            results = await asyncio.gather(
                service.submit_sites(["a1", "a2"], tenant="a"),
                service.submit_sites(["b1"], tenant="b"),
                service.submit_sites(["c1", "c2", "c3"], tenant="c"),
            )
            await service.close()
            return results, service

        results, service = asyncio.run(scenario())
        assert results == [["a1", "a2"], ["b1"], ["c1", "c2", "c3"]]
        assert engine.calls == 1, "three concurrent requests, one dispatch"
        assert engine.batch_sizes == [6]
        counters = service.counters
        assert counters["serve.requests_completed"] == 3
        assert counters["serve.sites_dispatched"] == 6
        assert counters["serve.coalesced_sites_peak"] == 6

    def test_reject_admission_raises_when_saturated(self):
        engine = _GateEngine()

        async def scenario():
            service = RealignmentService(engine, ServiceConfig(
                max_queue_sites=4, coalesce_sites=1, coalesce_wait_ms=0.0,
            ))
            await service.start()
            first = asyncio.create_task(
                service.submit_sites(["s1", "s2", "s3"], tenant="big")
            )
            await asyncio.get_running_loop().run_in_executor(
                None, engine.entered.wait, 10.0
            )
            with pytest.raises(ServiceSaturated) as info:
                await service.submit_sites(["t1", "t2"], tenant="late")
            engine.release.set()
            assert await first == ["s1", "s2", "s3"]
            # Room freed: the same submission is admitted now.
            assert await service.submit_sites(["t1", "t2"],
                                              tenant="late") == ["t1", "t2"]
            await service.close()
            return info.value, service

        error, service = asyncio.run(scenario())
        assert (error.requested, error.outstanding, error.limit,
                error.tenant) == (2, 3, 4, "late")
        assert service.counters["serve.requests_rejected"] == 1
        assert service.counters["serve.sites_rejected"] == 2

    def test_tenant_cap_rejects_hog_but_admits_others(self):
        engine = _GateEngine()

        async def scenario():
            service = RealignmentService(engine, ServiceConfig(
                max_queue_sites=100, max_tenant_sites=3,
                coalesce_sites=1, coalesce_wait_ms=0.0,
            ))
            await service.start()
            first = asyncio.create_task(
                service.submit_sites(["h1", "h2", "h3"], tenant="hog")
            )
            await asyncio.get_running_loop().run_in_executor(
                None, engine.entered.wait, 10.0
            )
            with pytest.raises(ServiceSaturated):
                await service.submit_sites(["h4"], tenant="hog")
            other = asyncio.create_task(
                service.submit_sites(["o1"], tenant="other")
            )
            engine.release.set()
            results = await asyncio.gather(first, other)
            await service.close()
            return results

        assert asyncio.run(scenario()) == [["h1", "h2", "h3"], ["o1"]]

    def test_queue_admission_parks_until_room_frees(self):
        engine = _GateEngine()

        async def scenario():
            service = RealignmentService(engine, ServiceConfig(
                max_queue_sites=2, admission="queue",
                coalesce_sites=1, coalesce_wait_ms=0.0,
            ))
            await service.start()
            first = asyncio.create_task(
                service.submit_sites(["a1", "a2"], tenant="a")
            )
            await asyncio.get_running_loop().run_in_executor(
                None, engine.entered.wait, 10.0
            )
            parked = asyncio.create_task(
                service.submit_sites(["b1", "b2"], tenant="b")
            )
            await asyncio.sleep(0.05)
            assert not parked.done(), "second request should be parked"
            engine.release.set()
            results = await asyncio.gather(first, parked)
            await service.close()
            return results, service

        results, service = asyncio.run(scenario())
        assert results == [["a1", "a2"], ["b1", "b2"]]
        assert service.counters["serve.admission_wait_us"] > 0

    def test_queue_admission_expires_at_the_deadline(self):
        engine = _GateEngine()

        async def scenario():
            service = RealignmentService(engine, ServiceConfig(
                max_queue_sites=2, admission="queue",
                coalesce_sites=1, coalesce_wait_ms=0.0,
            ))
            await service.start()
            first = asyncio.create_task(
                service.submit_sites(["a1", "a2"], tenant="a")
            )
            await asyncio.get_running_loop().run_in_executor(
                None, engine.entered.wait, 10.0
            )
            with pytest.raises(DeadlineExceeded):
                await service.submit_sites(["b1"], tenant="b",
                                           deadline_s=0.05)
            engine.release.set()
            await first
            await service.close()
            return service

        service = asyncio.run(scenario())
        assert service.counters["serve.requests_expired"] == 1

    def test_graceful_shutdown_drains_in_flight_jobs(self):
        engine = _GateEngine()

        async def scenario():
            service = RealignmentService(engine, ServiceConfig(
                coalesce_sites=1, coalesce_wait_ms=0.0,
            ))
            await service.start()
            first = asyncio.create_task(
                service.submit_sites(["a1"], tenant="a")
            )
            await asyncio.get_running_loop().run_in_executor(
                None, engine.entered.wait, 10.0
            )
            second = asyncio.create_task(
                service.submit_sites(["b1", "b2"], tenant="b")
            )
            await asyncio.sleep(0)  # let the second job enqueue
            closer = asyncio.create_task(service.close(drain=True))
            await asyncio.sleep(0.02)
            engine.release.set()
            results = await asyncio.gather(first, second)
            await closer
            with pytest.raises(ServiceClosed):
                await service.submit_sites(["late"], tenant="c")
            return results, service

        results, service = asyncio.run(scenario())
        assert results == [["a1"], ["b1", "b2"]]
        assert service.counters["serve.requests_completed"] == 2
        assert service._outstanding == 0

    def test_empty_submission_completes_without_queueing(self):
        engine = _EchoEngine()

        async def scenario():
            service = RealignmentService(engine)
            await service.start()
            result = await service.submit_sites([], tenant="idle")
            await service.close()
            return result

        assert asyncio.run(scenario()) == []
        assert engine.calls == 0

    def test_engine_failure_fails_the_batch_and_frees_room(self):
        class _BrokenEngine:
            def run_sites(self, sites, telemetry=None):
                raise RuntimeError("kernel exploded")

        async def scenario():
            service = RealignmentService(_BrokenEngine(), ServiceConfig(
                coalesce_sites=1, coalesce_wait_ms=0.0,
            ))
            await service.start()
            with pytest.raises(RuntimeError, match="kernel exploded"):
                await service.submit_sites(["s1"], tenant="t")
            await service.close()
            return service

        service = asyncio.run(scenario())
        assert service.counters["serve.batches_failed"] == 1
        assert service._outstanding == 0

    def test_snapshot_reports_latency_and_saturation_fields(self):
        engine = _EchoEngine()

        async def scenario():
            service = RealignmentService(engine, ServiceConfig(
                max_queue_sites=8, coalesce_sites=1, coalesce_wait_ms=0.0,
            ))
            await service.start()
            await service.submit_sites(["s1", "s2"], tenant="t0")
            snapshot = service.snapshot()
            await service.close()
            return snapshot

        snapshot = asyncio.run(scenario())
        assert snapshot.latency["count"] == 1.0
        for key in ("p50_ms", "p95_ms", "p99_ms"):
            assert snapshot.latency[key] >= 0.0
        assert 0.0 <= snapshot.saturation <= 1.0
        assert snapshot.tenant_sites == {"t0": 2}
        assert snapshot.outstanding_sites == 0
        assert "serve.saturated_us" in snapshot.counters
        assert snapshot.describe()


# ---------------------------------------------------------------------
# the TCP stack against the real realigner
# ---------------------------------------------------------------------
class TestServerByteIdentity:
    def test_single_request_round_trip_matches_batch_realigner(self):
        sample = _sample({"chrS": 4000}, seed=8)
        expected, _ = IndelRealigner(sample.reference).realign(sample.reads)
        expected_lines = [format_read(r) for r in expected]

        async def scenario():
            server = RealignmentServer(sample.reference)
            host, port = await server.start(port=0)
            try:
                async with await ServiceClient.open(host, port) as client:
                    result = await client.realign(
                        [format_read(r) for r in sample.reads],
                        tenant="t0",
                    )
                    assert await client.ping()
                    stats = await client.stats()
            finally:
                await server.close()
            return result, stats

        result, stats = asyncio.run(scenario())
        assert result.sam == expected_lines
        assert result.latency_ms > 0.0
        assert stats["counters"]["serve.requests_completed"] >= 1

    def test_native_kernel_round_trip_matches_batch_realigner(self):
        """The compiled tier under coalesced dispatch, end to end.

        ``service.start()`` pre-warms the native backend before traffic
        and the request plane then routes every coalesced batch through
        ``kernel="native"``; the served SAM must be byte-identical to
        the batch realigner run with the same engine config. Runs with
        or without a compiled backend -- the fallback path is exact.
        """
        from repro.engine import EngineConfig

        sample = _sample({"chrS": 4000}, seed=8)
        expected, _ = IndelRealigner(
            sample.reference, engine=EngineConfig(kernel="native"),
        ).realign(sample.reads)
        expected_lines = [format_read(r) for r in expected]

        async def scenario():
            server = RealignmentServer(
                sample.reference, engine=EngineConfig(kernel="native"),
            )
            host, port = await server.start(port=0)
            try:
                async with await ServiceClient.open(host, port) as client:
                    result = await client.realign(
                        [format_read(r) for r in sample.reads],
                        tenant="t-native",
                    )
                    stats = await client.stats()
            finally:
                await server.close()
            return result, stats

        result, stats = asyncio.run(scenario())
        assert result.sam == expected_lines
        assert stats["counters"]["serve.requests_completed"] >= 1

    def test_loadgen_reassembly_matches_batch_realigner(self):
        sample = _sample({"chrS": 4000, "chrT": 2500}, seed=9)
        expected, _ = IndelRealigner(sample.reference).realign(sample.reads)
        expected_lines = [format_read(r) for r in expected]

        async def scenario():
            server = RealignmentServer(sample.reference)
            host, port = await server.start(port=0)
            try:
                updated, report = await run_loadgen(
                    host, port, sample.reads, sample.reference,
                    profile=LoadProfile(tenants=3, requests_per_tenant=2,
                                        mean_interarrival_s=0.001),
                    seed=4, time_scale=0.0,
                )
            finally:
                await server.close()
            return updated, report

        updated, report = asyncio.run(scenario())
        assert [format_read(r) for r in updated] == expected_lines
        assert report.completed + report.sweep_requests >= report.jobs
        assert report.tenants == 3
        assert report.server["counters"]["serve.batches_dispatched"] >= 1
        if report.latency:
            assert (report.latency["p50_ms"] <= report.latency["p95_ms"]
                    <= report.latency["p99_ms"])

    def test_protocol_failures_keep_the_connection_alive(self):
        sample = _sample({"chrS": 2000}, seed=3)

        async def scenario():
            server = RealignmentServer(sample.reference)
            host, port = await server.start(port=0)
            try:
                reader, writer = await asyncio.open_connection(host, port)
                writer.write(b"this is not json\n")
                writer.write(encode_message({"id": 1, "op": "nonsense"}))
                writer.write(encode_message({"id": 2, "op": "realign",
                                             "sam": "not-a-list"}))
                writer.write(encode_message({"id": 3, "op": "ping"}))
                await writer.drain()
                frames = [decode_message(await reader.readline())
                          for _ in range(4)]
                writer.close()
                await writer.wait_closed()
            finally:
                await server.close()
            return frames

        frames = asyncio.run(scenario())
        by_id = {frame.get("id"): frame for frame in frames}
        assert by_id[None]["status"] == "error"  # unparseable line
        assert by_id[1]["status"] == "error"  # unknown op
        assert by_id[2]["status"] == "error"  # malformed realign
        assert by_id[3]["ok"] is True  # connection survived it all

    def test_server_rejects_when_saturated(self):
        sample = _sample({"chrS": 6000}, seed=2)
        _targets, windows = IndelRealigner(sample.reference).build_sites(
            list(sample.reads)
        )
        assert windows, "test sample must produce at least one site"

        async def scenario():
            server = RealignmentServer(
                sample.reference,
                service_config=ServiceConfig(max_queue_sites=1,
                                             coalesce_sites=1,
                                             coalesce_wait_ms=0.0),
            )
            # Swap in a gated engine so the one admitted site keeps the
            # queue full while the second request arrives.
            engine = _GateRealEngine()
            server.service.engine = engine
            host, port = await server.start(port=0)
            lines = [format_read(r) for r in sample.reads]
            try:
                async with await ServiceClient.open(host, port) as client:
                    first = asyncio.create_task(
                        client.realign(lines, tenant="a")
                    )
                    await asyncio.get_running_loop().run_in_executor(
                        None, engine.entered.wait, 10.0
                    )
                    with pytest.raises(ServiceSaturated):
                        await client.realign(lines, tenant="b")
                    engine.release.set()
                    await first
            finally:
                await server.close()

        asyncio.run(scenario())

    def test_canary_passes_on_a_healthy_deployment(self):
        sample = _sample({"chrS": 2000}, seed=2)

        async def scenario():
            server = RealignmentServer(sample.reference)
            await server.start(port=0)
            try:
                verdict = await server.run_canary()
                async with await ServiceClient.open(
                    *await _bound_address(server)
                ) as client:
                    stats = await client.stats()
            finally:
                await server.close()
            return verdict, stats

        verdict, stats = asyncio.run(scenario())
        assert verdict["ok"] is True
        assert verdict["reads_moved"] > 0
        assert verdict["mismatch_after"] <= verdict["mismatch_before"]
        assert stats["canary"]["ok"] is True


async def _bound_address(server):
    sockname = server._server.sockets[0].getsockname()
    return sockname[0], sockname[1]


# ---------------------------------------------------------------------
# chaos composition: worker faults under live serving traffic
# ---------------------------------------------------------------------
class TestServeChaos:
    def test_worker_faults_under_serving_traffic_stay_exact(self,
                                                            monkeypatch):
        monkeypatch.setenv("REPRO_WORKER_FAULT_RATE", "0.3")
        # Seed 3 faults every run's chunk 0 on attempt 0 (worker-error,
        # clean retry). Dispatch chunk IDs restart at 0 per engine call,
        # so a seed whose faults live on higher chunk IDs would never
        # inject through the service's small coalesced batches.
        monkeypatch.setenv("REPRO_CHAOS_SEED", "3")
        sites = _sites(10)
        serial = Engine(EngineConfig()).run_sites(sites)
        config = EngineConfig(workers=2, batch=2)
        engine = StreamingEngine(
            config, queue_depth=2,
            recovery=WorkerRecovery.from_env(),
        )

        async def scenario():
            service = RealignmentService(engine, ServiceConfig(
                coalesce_sites=4, coalesce_wait_ms=1.0,
            ))
            await service.start()
            results = await asyncio.gather(*(
                service.submit_sites(sites[i:i + 2], tenant=f"t{i % 3}")
                for i in range(0, len(sites), 2)
            ))
            snapshot = service.snapshot()
            await service.close()
            return results, snapshot

        try:
            results, snapshot = asyncio.run(scenario())
        finally:
            engine.close()
        flat = [result for slice_ in results for result in slice_]
        assert len(flat) == len(sites)
        for mine, reference in zip(flat, serial):
            assert mine.same_outputs(reference)
        injected = sum(value for name, value in snapshot.counters.items()
                       if name.startswith("worker.injected."))
        assert injected > 0, "chaos rate 0.3 over 10 sites must inject"
