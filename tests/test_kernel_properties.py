"""Deeper property tests on kernel and placement invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.hdc import HammingDistanceCalculator
from repro.genomics.cigar import CigarOp
from repro.genomics.quality import phred_from_ascii, phred_to_ascii
from repro.genomics.read import Read
from repro.genomics.samlite import format_read, parse_read
from repro.genomics.sequence import seq_to_array
from repro.realign.consensus import ObservedIndel, realigned_read_placement
from repro.realign.site import RealignmentSite
from repro.realign.whd import realign_site


def make_pair(draw):
    n = draw(st.integers(1, 12))
    m = draw(st.integers(n, 28))
    cons = draw(st.text(alphabet="ACGT", min_size=m, max_size=m))
    read = draw(st.text(alphabet="ACGT", min_size=n, max_size=n))
    quals = np.array(
        draw(st.lists(st.integers(1, 45), min_size=n, max_size=n)),
        dtype=np.uint8,
    )
    return cons, read, quals


class TestQualityScalingInvariance:
    @given(st.data(), st.integers(2, 2))
    @settings(max_examples=40, deadline=None)
    def test_scaling_qualities_preserves_kernel_decisions(self, data, factor):
        """Doubling every quality score doubles all WHDs, so the minimum
        offset, the pruning points, and the realignment decisions are
        unchanged -- the kernel depends on quality *ratios*, not
        magnitudes."""
        cons, read, quals = make_pair(data.draw)
        scaled = np.minimum(quals.astype(np.int64) * factor, 93).astype(
            np.uint8
        )
        # Only check when scaling stayed exact (no clamping hit).
        if not np.array_equal(scaled, quals * factor):
            return
        hdc = HammingDistanceCalculator(lanes=1, prune=True)
        base = hdc.compute_pair(seq_to_array(cons), seq_to_array(read), quals)
        scaled_result = hdc.compute_pair(
            seq_to_array(cons), seq_to_array(read), scaled
        )
        assert scaled_result.min_whd == factor * base.min_whd
        assert scaled_result.min_whd_idx == base.min_whd_idx
        assert scaled_result.cycles == base.cycles
        assert scaled_result.comparisons == base.comparisons


class TestSiteDecisionProperties:
    @given(st.integers(0, 400))
    @settings(max_examples=30, deadline=None)
    def test_realigned_positions_stay_inside_reference_span(self, seed):
        from repro.workloads.generator import BENCH_PROFILE, synthesize_site

        site = synthesize_site(np.random.default_rng(seed), BENCH_PROFILE,
                               complexity=0.4)
        result = realign_site(site)
        for j in range(site.num_reads):
            if result.realign[j]:
                offset = int(result.new_pos[j]) - site.start
                consensus = site.consensuses[result.best_cons]
                assert 0 <= offset <= len(consensus) - len(site.reads[j])
            else:
                assert result.new_pos[j] == -1

    @given(st.integers(0, 200))
    @settings(max_examples=20, deadline=None)
    def test_duplicate_consensus_never_beats_original(self, seed):
        """Appending a copy of the reference as an extra 'alternate'
        never causes realignment (it cannot strictly improve any read)."""
        from repro.workloads.generator import BENCH_PROFILE, synthesize_site

        site = synthesize_site(np.random.default_rng(seed), BENCH_PROFILE,
                               complexity=0.4)
        ref_only = RealignmentSite(
            chrom=site.chrom, start=site.start,
            consensuses=(site.reference, site.reference),
            reads=site.reads, quals=site.quals,
        )
        result = realign_site(ref_only)
        assert result.num_realigned == 0


class TestPlacementProperties:
    @given(
        st.integers(1, 3),  # op selector bucket
        st.integers(1, 10),  # indel length
        st.integers(0, 120),  # consensus offset k
        st.integers(5, 60),  # read length
        st.integers(20, 140),  # indel window offset d
    )
    @settings(max_examples=100, deadline=None)
    def test_cigar_conserves_read_length(self, kind, length, k, n, d):
        window_start = 1_000
        if kind == 1:
            indel = None
        elif kind == 2:
            indel = ObservedIndel(window_start + d, CigarOp.DELETION, length)
        else:
            indel = ObservedIndel(window_start + d, CigarOp.INSERTION,
                                  length, inserted="A" * length)
        pos, cigar = realigned_read_placement(indel, window_start, k, n)
        assert cigar.read_length == n
        assert pos >= window_start

    @given(st.integers(0, 100), st.integers(5, 40), st.integers(10, 80),
           st.integers(1, 8))
    @settings(max_examples=60, deadline=None)
    def test_deletion_reference_span(self, k, n, d, length):
        """A read spanning a deletion covers n + length reference bases;
        one not spanning it covers exactly n."""
        indel = ObservedIndel(1_000 + d, CigarOp.DELETION, length)
        _pos, cigar = realigned_read_placement(indel, 1_000, k, n)
        spans = k < d < k + n
        expected = n + length if spans else n
        assert cigar.reference_length == expected


class TestSamRoundtripProperty:
    @given(
        st.text(alphabet="ACGTN", min_size=1, max_size=40),
        st.integers(0, 10_000),
        st.lists(st.integers(0, 60), min_size=1, max_size=40),
        st.booleans(), st.booleans(),
    )
    @settings(max_examples=60, deadline=None)
    def test_mapped_read_roundtrip(self, seq, pos, quals, reverse, dup):
        from repro.genomics.cigar import Cigar

        quals = (quals * ((len(seq) // len(quals)) + 1))[: len(seq)]
        read = Read("prop", "7", pos, seq, np.array(quals, dtype=np.uint8),
                    Cigar.matched(len(seq)), is_reverse=reverse,
                    is_duplicate=dup)
        parsed = parse_read(format_read(read))
        assert parsed.seq == read.seq
        assert parsed.pos == read.pos
        assert parsed.is_reverse == reverse
        assert parsed.is_duplicate == dup
        assert parsed.quals.tolist() == read.quals.tolist()

    @given(st.lists(st.integers(0, 93), max_size=60))
    @settings(max_examples=50, deadline=None)
    def test_quality_string_roundtrip(self, scores):
        assert phred_from_ascii(phred_to_ascii(scores)).tolist() == scores
