"""Unit tests for the fault-injection and fault-tolerance layer."""

import numpy as np
import pytest

from repro.core.host import HostPlanError, HostWatchdog, WatchdogBank
from repro.core.router import RoccCommandRouter, RouterError
from repro.core.scheduler import ScheduledTarget, schedule, schedule_async
from repro.core.system import AcceleratedIRSystem, SystemConfig
from repro.hw.axi import (
    LossyMmioRegisterFile,
    check_response,
    crc8,
    protect_response,
)
from repro.hw.memory import PcieDmaModel
from repro.perf.fleet import FleetJob, plan_fleet, simulate_preemptions
from repro.resilience.faults import FaultKind, FaultPlan
from repro.resilience.policy import (
    QuarantinePolicy,
    ResilienceConfig,
    ResilienceError,
    RetryPolicy,
)
from repro.resilience.recovery import schedule_with_recovery
from repro.workloads.generator import BENCH_PROFILE, synthesize_site


def simple_targets(computes, transfer=2):
    return [
        ScheduledTarget(index=i, transfer_cycles=transfer, compute_cycles=c)
        for i, c in enumerate(computes)
    ]


class TestFaultPlan:
    def test_draws_are_deterministic_and_order_independent(self):
        plan = FaultPlan.chaos(seed=11, rate=0.5)
        forward = [plan.attempt_outcome(u, t, 0)
                   for u in range(4) for t in range(8)]
        backward = [plan.attempt_outcome(u, t, 0)
                    for u in reversed(range(4)) for t in reversed(range(8))]
        assert forward == list(reversed(backward))

    def test_distinct_seeds_give_distinct_schedules(self):
        a = FaultPlan.chaos(seed=1, rate=0.5)
        b = FaultPlan.chaos(seed=2, rate=0.5)
        outcomes_a = [a.attempt_outcome(0, t, 0) for t in range(64)]
        outcomes_b = [b.attempt_outcome(0, t, 0) for t in range(64)]
        assert outcomes_a != outcomes_b

    def test_none_plan_is_fault_free(self):
        plan = FaultPlan.none()
        assert plan.is_fault_free
        assert plan.attempt_outcome(0, 0, 0) is None
        assert plan.dma_outcome(0, 0) is None
        assert plan.preemption_fraction(0) is None

    def test_chaos_zero_rate_is_fault_free(self):
        assert FaultPlan.chaos(seed=3, rate=0.0).is_fault_free

    def test_full_rate_always_faults(self):
        plan = FaultPlan(seed=5, unit_hang_rate=1.0)
        for target in range(16):
            event = plan.attempt_outcome(2, target, 0)
            assert event is not None and event.kind is FaultKind.UNIT_HANG

    def test_rate_validation(self):
        with pytest.raises(ValueError):
            FaultPlan(unit_hang_rate=1.2)
        with pytest.raises(ValueError):
            FaultPlan(unit_hang_rate=0.6, response_drop_rate=0.6)
        with pytest.raises(ValueError):
            FaultPlan(slowdown_range=(0.5, 2.0))
        with pytest.raises(ValueError):
            FaultPlan.chaos(seed=0, rate=1.5)

    def test_slowdown_magnitude_within_range(self):
        plan = FaultPlan(seed=9, unit_slowdown_rate=1.0,
                         slowdown_range=(3.0, 5.0))
        for target in range(16):
            event = plan.attempt_outcome(0, target, 0)
            assert event.kind is FaultKind.UNIT_SLOWDOWN
            assert 3.0 <= event.magnitude <= 5.0

    def test_preemption_fraction_interior(self):
        plan = FaultPlan(seed=4, preemption_rate=1.0)
        for instance in range(16):
            fraction = plan.preemption_fraction(instance)
            assert 0.0 < fraction < 1.0

    def test_chaos_rates_scale_with_rate(self):
        lo = FaultPlan.chaos(seed=0, rate=0.1)
        hi = FaultPlan.chaos(seed=0, rate=0.4)
        assert hi.unit_fault_rate == pytest.approx(4 * lo.unit_fault_rate)
        assert hi.dma_fault_rate == pytest.approx(4 * lo.dma_fault_rate)


class TestPolicies:
    def test_backoff_grows_and_caps(self):
        policy = RetryPolicy(base_backoff_cycles=100,
                             max_backoff_cycles=400, jitter_fraction=0.0)
        plan = FaultPlan.none()
        waits = [policy.backoff_cycles(a, plan, target=0) for a in range(5)]
        assert waits == [100, 200, 400, 400, 400]

    def test_jitter_is_bounded_and_deterministic(self):
        policy = RetryPolicy(base_backoff_cycles=1000,
                             max_backoff_cycles=1000, jitter_fraction=0.5)
        plan = FaultPlan(seed=21)
        waits = [policy.backoff_cycles(0, plan, target=t) for t in range(32)]
        assert all(500 <= w <= 1500 for w in waits)
        assert len(set(waits)) > 1  # jitter actually spreads retries
        assert waits == [policy.backoff_cycles(0, plan, target=t)
                        for t in range(32)]

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            QuarantinePolicy(failure_threshold=0)
        with pytest.raises(ValueError):
            HostWatchdog(multiplier=0.5)
        with pytest.raises(ValueError):
            ResilienceConfig(fallback_penalty=0.5)


class TestWatchdog:
    def test_deadline_scales_with_expected_work(self):
        watchdog = HostWatchdog(multiplier=4.0, slack_cycles=100)
        assert watchdog.deadline_cycles(1000) == 4100
        assert watchdog.deadline_cycles(0) == 100

    def test_bank_arm_expire_cycle(self):
        bank = WatchdogBank()
        bank.arm(3, deadline=500)
        bank.arm(5, deadline=200)
        assert bank.next_deadline() == 200
        assert bank.expired(300) == [5]
        bank.expire(5)
        assert bank.expirations == 1
        bank.disarm(3)
        assert bank.next_deadline() is None
        with pytest.raises(HostPlanError):
            bank.expire(3)

    def test_double_arm_rejected(self):
        bank = WatchdogBank()
        bank.arm(0, deadline=10)
        with pytest.raises(HostPlanError):
            bank.arm(0, deadline=20)


class TestRecoveryScheduler:
    def test_fault_free_plan_matches_schedule_async(self):
        targets = simple_targets([50, 400, 90, 10, 220, 75], transfer=6)
        base = schedule_async(targets, 3)
        resilient = schedule_with_recovery(
            targets, 3, ResilienceConfig(plan=FaultPlan.none())
        )
        assert resilient.makespan == base.makespan
        assert resilient.spans == base.spans
        assert resilient.transfer_cycles_total == base.transfer_cycles_total
        assert all(mode == "hw" for mode in resilient.completions.values())

    def test_schedule_dispatch_routes_resilience(self):
        targets = simple_targets([50, 60])
        result = schedule(targets, 2, "async",
                          resilience=ResilienceConfig(plan=FaultPlan.none()))
        assert result.makespan == schedule_async(targets, 2).makespan
        with pytest.raises(ValueError):
            schedule(targets, 2, "sync",
                     resilience=ResilienceConfig(plan=FaultPlan.none()))

    def test_hang_burns_watchdog_then_retries(self):
        # One target, hang on every attempt: retries exhaust, then the
        # software fallback completes it.
        config = ResilienceConfig(
            plan=FaultPlan(seed=0, unit_hang_rate=1.0),
            retry=RetryPolicy(max_attempts=2),
            quarantine=QuarantinePolicy(failure_threshold=99),
        )
        result = schedule_with_recovery(simple_targets([100]), 2, config)
        assert result.completions == {0: "sw"}
        assert result.counters.fallbacks == 1
        assert result.counters.watchdog_expirations == 2
        assert len(result.spans) == 2  # both hardware attempts visible
        assert len(result.fallback_spans) == 1
        # The hang occupied the unit until the watchdog deadline.
        deadline = config.watchdog.deadline_cycles(100)
        assert all(s.duration == deadline for s in result.spans)

    def test_slowdown_within_watchdog_window_succeeds(self):
        config = ResilienceConfig(
            plan=FaultPlan(seed=0, unit_slowdown_rate=1.0,
                           slowdown_range=(2.0, 2.0)),
            watchdog=HostWatchdog(multiplier=4.0),
        )
        targets = simple_targets([100, 100])
        result = schedule_with_recovery(targets, 2, config)
        assert all(mode == "hw" for mode in result.completions.values())
        assert result.counters.retries == 0
        assert all(span.duration == 200 for span in result.spans)

    def test_extreme_slowdown_is_killed_as_hang(self):
        config = ResilienceConfig(
            plan=FaultPlan(seed=0, unit_slowdown_rate=1.0,
                           slowdown_range=(100.0, 100.0)),
            retry=RetryPolicy(max_attempts=1),
            watchdog=HostWatchdog(multiplier=2.0, slack_cycles=10),
        )
        result = schedule_with_recovery(simple_targets([50]), 1, config)
        assert result.completions == {0: "sw"}
        assert result.counters.watchdog_expirations == 1

    def test_corrupt_response_retries_without_watchdog_wait(self):
        config = ResilienceConfig(
            plan=FaultPlan(seed=0, response_corrupt_rate=1.0),
            retry=RetryPolicy(max_attempts=2),
            quarantine=QuarantinePolicy(failure_threshold=99),
        )
        result = schedule_with_recovery(simple_targets([100]), 1, config)
        assert result.completions == {0: "sw"}
        assert result.counters.watchdog_expirations == 0
        assert result.counters.count(FaultKind.RESPONSE_CORRUPT) == 2
        # Corrupt attempts only occupy the unit for the compute time.
        assert all(span.duration == 100 for span in result.spans)

    def test_units_quarantine_down_to_floor(self):
        config = ResilienceConfig(
            plan=FaultPlan(seed=0, unit_hang_rate=1.0),
            retry=RetryPolicy(max_attempts=8),
            quarantine=QuarantinePolicy(failure_threshold=2,
                                        min_active_units=1),
        )
        result = schedule_with_recovery(
            simple_targets([50] * 12), 4, config
        )
        # Everything hangs: three units quarantined, the floor unit kept.
        assert len(result.quarantined_units) == 3
        healthy = [h for h in result.unit_health if not h.quarantined]
        assert len(healthy) == 1
        assert all(mode == "sw" for mode in result.completions.values())

    def test_dma_faults_charge_channel_and_retry(self):
        config = ResilienceConfig(
            plan=FaultPlan(seed=0, dma_error_rate=1.0),
            retry=RetryPolicy(max_attempts=3),
        )
        result = schedule_with_recovery(
            simple_targets([100, 100], transfer=10), 2, config,
            dma_penalties=[(7, 99), (7, 99)],
        )
        # Transfers never succeed: no hardware spans, only fallbacks.
        assert result.spans == []
        assert result.transfer_cycles_total == 0
        assert result.dma_penalty_cycles == 2 * 3 * 7
        assert all(mode == "sw" for mode in result.completions.values())

    def test_fallback_disabled_raises_when_exhausted(self):
        config = ResilienceConfig(
            plan=FaultPlan(seed=0, unit_hang_rate=1.0),
            retry=RetryPolicy(max_attempts=1),
            software_fallback=False,
        )
        with pytest.raises(ResilienceError):
            schedule_with_recovery(simple_targets([10]), 1, config)

    def test_dma_penalties_must_parallel_targets(self):
        config = ResilienceConfig(plan=FaultPlan.none())
        with pytest.raises(ValueError):
            schedule_with_recovery(simple_targets([10, 10]), 1, config,
                                   dma_penalties=[(1, 1)])


class TestResponseIntegrity:
    def test_crc_roundtrip(self):
        for payload in (0, 1, 31, 255, 4096):
            assert check_response(protect_response(payload)) == payload

    def test_crc_rejects_bit_flips(self):
        word = protect_response(17)
        for bit in range(12):
            assert check_response(word ^ (1 << bit)) != 17

    def test_crc8_input_validation(self):
        with pytest.raises(ValueError):
            crc8(-1)
        with pytest.raises(ValueError):
            protect_response(-2)

    def test_lossy_mmio_drops_and_corrupts(self):
        fates = iter(["ok", "drop", "corrupt"])
        mmio = LossyMmioRegisterFile(injector=lambda payload: next(fates))
        mmio.push_response(5)
        mmio.push_response(6)  # dropped
        mmio.push_response(7)  # corrupted
        assert mmio.responses_dropped == 1
        assert mmio.responses_corrupted == 1
        assert check_response(mmio.poll_response()) == 5
        corrupted = mmio.poll_response()
        assert corrupted is not None and check_response(corrupted) is None
        assert mmio.poll_response() is None  # the drop never arrived

    def test_lossy_mmio_rejects_unknown_fate(self):
        mmio = LossyMmioRegisterFile(injector=lambda payload: "explode")
        with pytest.raises(ValueError):
            mmio.push_response(1)


class TestDmaFaultModel:
    def test_fault_latencies_ordered(self):
        dma = PcieDmaModel()
        num_bytes = 1 << 20
        ok = dma.faulted_transfer_seconds(num_bytes, "ok")
        error = dma.faulted_transfer_seconds(num_bytes, "error")
        timeout = dma.faulted_transfer_seconds(num_bytes, "timeout")
        assert ok == dma.streaming_seconds(num_bytes)
        assert 0 < error < ok + dma.setup_latency_s
        assert timeout == dma.timeout_s > error

    def test_unknown_outcome_rejected(self):
        with pytest.raises(ValueError):
            PcieDmaModel().faulted_transfer_seconds(64, "melted")
        with pytest.raises(ValueError):
            PcieDmaModel(timeout_s=0.0)


class TestRouterQuarantine:
    def test_quarantined_unit_rejects_commands(self):
        from repro.core.isa import BufferId, ir_set_addr

        router = RoccCommandRouter(num_units=4)
        router.quarantine_unit(2)
        assert router.healthy_units() == [0, 1, 3]
        with pytest.raises(RouterError):
            router.dispatch(ir_set_addr(2, BufferId.READ_BASES, 0))
        router.release_unit(2)
        router.dispatch(ir_set_addr(2, BufferId.READ_BASES, 0))
        assert router.healthy_units() == [0, 1, 2, 3]

    def test_quarantine_tears_down_busy_state(self):
        router = RoccCommandRouter(num_units=2)
        router.units[1].busy = True
        router.quarantine_unit(1)
        assert not router.units[1].busy

    def test_quarantine_unknown_unit_rejected(self):
        with pytest.raises(RouterError):
            RoccCommandRouter(num_units=2).quarantine_unit(7)


class TestFleetPreemption:
    def jobs(self):
        return [FleetJob(f"chr{i}", 100.0 * (i + 1)) for i in range(6)]

    def test_no_preemption_is_identity(self):
        plan = plan_fleet(self.jobs(), 3)
        result = simulate_preemptions(plan, lambda instance: None)
        assert result.events == []
        assert result.rescheduled == []
        assert result.makespan_seconds == plan.makespan_seconds
        assert result.makespan_inflation == 1.0

    def test_single_preemption_reschedules_lost_jobs(self):
        plan = plan_fleet(self.jobs(), 3)
        result = simulate_preemptions(
            plan, lambda instance: 0.5 if instance == 0 else None,
            restart_overhead_s=30.0,
        )
        assert [e.instance for e in result.events] == [0]
        assert result.rescheduled  # something had to move
        assert result.makespan_seconds > plan.makespan_seconds
        # Each moved job pays the restart overhead exactly once.
        assert result.restart_overhead_seconds == pytest.approx(
            30.0 * len(result.rescheduled)
        )

    def test_whole_fleet_preempted_uses_replacement(self):
        plan = plan_fleet(self.jobs(), 2)
        result = simulate_preemptions(plan, lambda instance: 0.25)
        assert len(result.events) == 2
        replacement = max(result.final_loads)
        assert replacement == 2  # fresh instance index
        assert result.makespan_seconds > plan.makespan_seconds

    def test_faultplan_plugs_in(self):
        plan = plan_fleet(self.jobs(), 4)
        chaos = FaultPlan(seed=13, preemption_rate=0.5)
        result = simulate_preemptions(plan, chaos.preemption_fraction)
        again = simulate_preemptions(plan, chaos.preemption_fraction)
        assert result.final_loads == again.final_loads  # deterministic

    def test_bad_fraction_rejected(self):
        plan = plan_fleet(self.jobs(), 2)
        with pytest.raises(ValueError):
            simulate_preemptions(plan, lambda instance: 1.5)
        with pytest.raises(ValueError):
            simulate_preemptions(plan, lambda instance: None,
                                 restart_overhead_s=-1.0)


class TestSystemIntegration:
    def sites(self, n=12, seed=0):
        rng = np.random.default_rng(seed)
        return [synthesize_site(rng, BENCH_PROFILE) for _ in range(n)]

    def test_sync_scheduling_rejects_resilience(self):
        with pytest.raises(ValueError):
            SystemConfig(scheduling="sync",
                         resilience=ResilienceConfig.chaos(0, 0.1))

    def test_fault_free_resilient_run_matches_plain_run(self):
        sites = self.sites()
        plain = AcceleratedIRSystem(SystemConfig.iracc()).run(sites)
        resilient = AcceleratedIRSystem(SystemConfig(
            resilience=ResilienceConfig(plan=FaultPlan.none())
        )).run(sites)
        assert resilient.total_seconds == plain.total_seconds
        assert resilient.resilience is not None
        assert resilient.resilience.counters.total_injected == 0
        assert resilient.fallback_site_indices == set()
        assert resilient.active_units == 32

    def test_chaotic_run_reports_stats_and_costs_time(self):
        sites = self.sites()
        plain = AcceleratedIRSystem(SystemConfig.iracc()).run(sites)
        chaotic = AcceleratedIRSystem(SystemConfig(
            resilience=ResilienceConfig.chaos(seed=9, rate=0.4)
        )).run(sites)
        stats = chaotic.resilience
        assert stats is not None
        assert stats.counters.total_injected > 0
        assert chaotic.total_seconds > plain.total_seconds
        assert len(stats.completions) == len(sites)
        assert chaotic.fault_events == stats.counters.total_injected
        assert 0 < stats.active_units <= 32

    def test_replicated_chaos_keys_positions_not_sites(self):
        sites = self.sites(n=6)
        run = AcceleratedIRSystem(SystemConfig(
            resilience=ResilienceConfig.chaos(seed=2, rate=0.3)
        )).run(sites, replication=3)
        assert len(run.resilience.completions) == 18
        assert run.fallback_site_indices <= set(range(6))


class TestResilienceExperiment:
    def test_report_degrades_gracefully(self):
        from repro.experiments import resilience as experiment

        report = experiment.run(
            fault_rates=(0.0, 0.1, 0.3),
            sites_per_chromosome=12, replication=2,
        )
        assert len(report.rows) == 3
        assert report.rows[0].faults_injected == 0
        assert report.rows[0].speedup == report.fault_free_speedup
        # Faults cost time but the system never collapses.
        assert report.worst_speedup > 0.0
        assert report.rows[-1].total_seconds >= report.rows[0].total_seconds
        assert report.degrades_gracefully

    def test_main_prints_table(self, capsys):
        from repro.experiments import resilience as experiment

        experiment.main(fault_rates=(0.0, 0.2),
                        sites_per_chromosome=8, replication=1)
        output = capsys.readouterr().out
        assert "speedup vs. injected fault rate" in output
        assert "fault rate" in output


class TestChaosCli:
    def test_resilience_parser_flags(self):
        from repro.__main__ import build_parser

        args = build_parser().parse_args([
            "resilience", "--fault-rate", "0.05", "--fault-rate", "0.2",
            "--chaos-seed", "7", "--sites", "16", "--replication", "2",
        ])
        assert args.fault_rate == [0.05, 0.2]
        assert args.chaos_seed == 7

    def test_chaotic_realign_is_byte_identical(self, tmp_path, capsys):
        from repro.__main__ import main as cli_main

        out = tmp_path / "sample"
        assert cli_main([
            "simulate", "--out", str(out), "--length", "8000",
            "--seed", "2", "--coverage", "15",
        ]) == 0
        assert cli_main([
            "realign", "--reference", str(out / "reference.fa"),
            "--sam", str(out / "aligned.sam"),
            "--out", str(out / "clean.sam"), "--accelerated",
        ]) == 0
        assert cli_main([
            "realign", "--reference", str(out / "reference.fa"),
            "--sam", str(out / "aligned.sam"),
            "--out", str(out / "chaos.sam"), "--accelerated",
            "--fault-rate", "0.4", "--chaos-seed", "11",
        ]) == 0
        captured = capsys.readouterr().out
        assert "chaos mode (seed 11, rate 40%)" in captured
        assert "faults injected" in captured
        clean = (out / "clean.sam").read_bytes()
        chaos = (out / "chaos.sam").read_bytes()
        assert chaos == clean

    def test_resilience_command_smoke(self, capsys):
        from repro.__main__ import main as cli_main

        assert cli_main([
            "resilience", "--fault-rate", "0.2",
            "--sites", "8", "--replication", "1",
        ]) == 0
        assert "speedup vs. injected fault rate" in capsys.readouterr().out
