"""Tests for the extension features: known sites, industry comparison, CLI."""

import numpy as np
import pytest

from repro.baselines.industry import (
    RELATED_SYSTEMS,
    amdahl_ceiling,
    whole_analysis_advantage,
)
from repro.genomics.cigar import Cigar
from repro.genomics.read import Read
from repro.genomics.reference import Contig, ReferenceGenome
from repro.genomics.sequence import random_bases
from repro.genomics.variants import Variant
from repro.realign.targets import TargetCreatorConfig, identify_targets
from repro.__main__ import build_parser, main as cli_main


class TestKnownSites:
    @pytest.fixture
    def reference(self):
        rng = np.random.default_rng(55)
        return ReferenceGenome([Contig("1", random_bases(5_000, rng))])

    def test_known_site_seeds_target_without_read_evidence(self, reference):
        # All carriers misaligned gap-free: no CIGAR evidence at all.
        seq = reference.fetch("1", 1000, 1080)
        reads = [Read(f"r{i}", "1", 1000, seq, np.full(80, 30, np.uint8),
                      Cigar.parse("80M")) for i in range(3)]
        config = TargetCreatorConfig(use_mismatch_clusters=False)
        assert identify_targets(reads, reference, config) == []
        known = [Variant("1", 1_040, reference.fetch("1", 1040, 1043),
                         reference.fetch("1", 1040, 1041))]
        targets = identify_targets(reads, reference, config,
                                   known_sites=known)
        assert len(targets) == 1
        assert targets[0].start <= 1_040 < targets[0].end

    def test_known_site_as_tuple(self, reference):
        config = TargetCreatorConfig(use_mismatch_clusters=False)
        targets = identify_targets([], reference, config,
                                   known_sites=[("1", 2_000)])
        assert len(targets) == 1

    def test_known_site_outside_reference_ignored(self, reference):
        config = TargetCreatorConfig(use_mismatch_clusters=False)
        assert identify_targets([], reference, config,
                                known_sites=[("9", 10), ("1", 10**9)]) == []


class TestIndustryComparison:
    def test_amdahl_ceilings(self):
        bounds = whole_analysis_advantage()
        # Infinite Smith-Waterman speedup buys ~5%; IR buys up to 52%.
        assert bounds["smith_waterman"] == pytest.approx(1 / 0.95)
        assert bounds["indel_realignment"] == pytest.approx(1 / 0.66)
        assert 1.4 < bounds["indel_realignment_at_81x"] < 1.52
        assert bounds["indel_realignment"] > bounds["primary_alignment"] \
            > bounds["smith_waterman"]

    def test_amdahl_validation(self):
        with pytest.raises(ValueError):
            amdahl_ceiling(0.0)
        with pytest.raises(ValueError):
            amdahl_ceiling(0.5, 0)

    def test_related_systems_include_dragen_and_this_work(self):
        names = {s.name for s in RELATED_SYSTEMS}
        assert "DRAGEN" in names
        assert any("IR ACC" in n for n in names)


class TestCli:
    def test_parser_knows_every_experiment(self):
        parser = build_parser()
        for command in ("figure2", "figure3", "figure4", "figure7",
                        "figure9", "tables", "microarch", "all"):
            args = parser.parse_args([command])
            assert args.command == command

    def test_simulate_and_realign_roundtrip(self, tmp_path, capsys):
        out = tmp_path / "sample"
        assert cli_main([
            "simulate", "--out", str(out), "--length", "8000",
            "--seed", "2", "--coverage", "15",
        ]) == 0
        assert (out / "reference.fa").exists()
        assert (out / "aligned.sam").exists()
        assert (out / "truth.txt").exists()
        assert cli_main([
            "realign", "--reference", str(out / "reference.fa"),
            "--sam", str(out / "aligned.sam"),
            "--out", str(out / "realigned.sam"),
        ]) == 0
        captured = capsys.readouterr().out
        assert "reads realigned" in captured
        assert (out / "realigned.sam").exists()

    def test_figure4_command(self, capsys):
        assert cli_main(["figure4"]) == 0
        assert "all figure values match: True" in capsys.readouterr().out
