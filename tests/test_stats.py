"""Unit tests for read-set statistics and repo smoke checks."""

import py_compile
from pathlib import Path

import numpy as np
import pytest

from repro.genomics.cigar import Cigar
from repro.genomics.read import Read
from repro.genomics.reference import ReferenceGenome
from repro.genomics.simulate import SimulationProfile, simulate_sample
from repro.genomics.stats import compute_stats, format_stats


def make_read(name, pos, seq, cigar, chrom="1", dup=False):
    return Read(name, chrom, pos, seq, np.full(len(seq), 30, np.uint8),
                Cigar.parse(cigar), is_duplicate=dup)


class TestComputeStats:
    @pytest.fixture
    def reference(self):
        return ReferenceGenome.from_dict({"1": "ACGT" * 25})

    def test_basic_counters(self, reference):
        reads = [
            make_read("a", 0, "ACGT", "4M"),
            make_read("b", 4, "ACTT", "4M"),  # one mismatch at pos 6
            make_read("dup", 0, "ACGT", "4M", dup=True),
            Read("u", None, 0, "ACGT", np.full(4, 20, np.uint8)),
        ]
        stats = compute_stats(reads, reference)
        assert stats.total_reads == 4
        assert stats.mapped_reads == 3
        assert stats.duplicate_reads == 1
        assert stats.mapped_fraction == 0.75
        assert stats.aligned_bases == 12
        assert stats.mismatched_bases == 1
        assert stats.mismatch_rate == pytest.approx(1 / 12)

    def test_cigar_composition_and_indels(self, reference):
        reads = [make_read("a", 0, "ACGTAC", "2M2I2M"),
                 make_read("b", 10, "GTAC", "2M3D2M")]
        stats = compute_stats(reads, reference)
        assert stats.cigar_ops == {"M": 8, "I": 2, "D": 3}
        assert stats.reads_with_indels == 2
        assert stats.indel_read_fraction == 1.0

    def test_coverage(self, reference):
        reads = [make_read(f"r{i}", 0, "ACGT" * 25, "100M")
                 for i in range(5)]
        stats = compute_stats(reads, reference)
        assert stats.coverage_by_contig["1"] == pytest.approx(5.0)
        assert stats.mean_coverage == pytest.approx(5.0)

    def test_empty(self):
        stats = compute_stats([])
        assert stats.mapped_fraction == 0.0
        assert stats.mismatch_rate == 0.0
        assert stats.mean_quality == 0.0

    def test_simulator_hits_operating_point(self):
        profile = SimulationProfile(coverage=30, base_error_rate=0.01,
                                    snp_rate=1e-9, indel_rate=1e-9,
                                    hotspot_mass=0.0)
        sample = simulate_sample({"1": 40_000}, profile=profile, seed=8)
        stats = compute_stats(sample.reads, sample.reference)
        assert stats.mean_coverage == pytest.approx(30, rel=0.05)
        # With no variants, mismatches are sequencing errors only.
        assert stats.mismatch_rate == pytest.approx(0.01, rel=0.2)

    def test_format(self, reference):
        stats = compute_stats([make_read("a", 0, "ACGT", "4M")], reference)
        text = format_stats(stats)
        assert "mismatch rate" in text
        assert "coverage" in text


class TestRepoSmoke:
    def test_every_example_compiles(self):
        examples = sorted(Path("examples").glob("*.py"))
        assert len(examples) >= 6
        for path in examples:
            py_compile.compile(str(path), doraise=True)

    def test_every_benchmark_compiles(self):
        benches = sorted(Path("benchmarks").glob("bench_*.py"))
        assert len(benches) >= 13
        for path in benches:
            py_compile.compile(str(path), doraise=True)
