"""Unit tests for FASTA, FASTQ, and SAM-lite IO."""

import io

import numpy as np
import pytest

from repro.genomics.cigar import Cigar
from repro.genomics.fasta import (
    FastaError,
    parse_fasta,
    read_reference,
    reference_to_string,
    write_fasta,
)
from repro.genomics.fastq import (
    FastqError,
    FastqRecord,
    parse_fastq,
    write_fastq,
)
from repro.genomics.read import Read
from repro.genomics.reference import ReferenceGenome
from repro.genomics.samlite import (
    SamError,
    format_read,
    parse_read,
    parse_sam,
    write_sam,
)


class TestFasta:
    def test_parse_multi_contig_wrapped(self):
        text = ">chr1 description here\nACGT\nacgt\n>chr2\nTTTT\n"
        records = parse_fasta(io.StringIO(text))
        assert records == [("chr1", "ACGTACGT"), ("chr2", "TTTT")]

    def test_parse_rejects_headerless_data(self):
        with pytest.raises(FastaError):
            parse_fasta(io.StringIO("ACGT\n"))

    def test_parse_rejects_empty(self):
        with pytest.raises(FastaError):
            parse_fasta(io.StringIO(""))

    def test_roundtrip_via_file(self, tmp_path):
        path = tmp_path / "ref.fa"
        write_fasta([("a", "ACGT" * 30)], path, line_width=50)
        assert parse_fasta(path) == [("a", "ACGT" * 30)]

    def test_reference_roundtrip(self):
        ref = ReferenceGenome.from_dict({"1": "ACGTT", "2": "GGG"})
        text = reference_to_string(ref)
        loaded = read_reference(io.StringIO(text))
        assert loaded.contig("1").sequence == "ACGTT"
        assert loaded.contig("2").sequence == "GGG"

    def test_bad_line_width(self):
        with pytest.raises(ValueError):
            write_fasta([("a", "ACGT")], io.StringIO(), line_width=0)


class TestFastq:
    def test_roundtrip(self, tmp_path):
        records = [
            FastqRecord("r1", "ACGT", np.array([30, 31, 32, 33], np.uint8)),
            FastqRecord("r2", "TT", np.array([2, 40], np.uint8)),
        ]
        path = tmp_path / "reads.fq"
        write_fastq(records, path)
        loaded = list(parse_fastq(path))
        assert [r.name for r in loaded] == ["r1", "r2"]
        assert loaded[0].quals.tolist() == [30, 31, 32, 33]

    def test_length_mismatch_rejected(self):
        text = "@r\nACGT\n+\n!!\n"
        with pytest.raises(FastqError):
            list(parse_fastq(io.StringIO(text)))

    def test_bad_header_rejected(self):
        with pytest.raises(FastqError):
            list(parse_fastq(io.StringIO("r\nACGT\n+\n!!!!\n")))

    def test_record_validates_quals(self):
        with pytest.raises(FastqError):
            FastqRecord("r", "ACGT", np.array([30], np.uint8))


class TestSamLite:
    def make_read(self, **kwargs):
        defaults = dict(
            name="r1", chrom="1", pos=99, seq="ACGT",
            quals=np.array([30, 30, 30, 30], np.uint8),
            cigar=Cigar.parse("2M1I1M"), mapq=55,
            is_reverse=True, is_duplicate=True,
        )
        defaults.update(kwargs)
        return Read(**defaults)

    def test_format_fields(self):
        line = format_read(self.make_read())
        fields = line.split("\t")
        assert fields[0] == "r1"
        assert int(fields[1]) == 0x10 | 0x400
        assert fields[3] == "100"  # 1-based POS
        assert fields[5] == "2M1I1M"

    def test_roundtrip(self):
        read = self.make_read()
        parsed = parse_read(format_read(read))
        assert parsed.name == read.name
        assert parsed.pos == read.pos
        assert str(parsed.cigar) == str(read.cigar)
        assert parsed.is_reverse and parsed.is_duplicate
        assert parsed.quals.tolist() == read.quals.tolist()

    def test_unmapped_roundtrip(self):
        read = Read("u", None, 0, "ACGT", np.full(4, 20, np.uint8))
        parsed = parse_read(format_read(read))
        assert not parsed.is_mapped

    def test_file_roundtrip_with_header(self, tmp_path):
        ref = ReferenceGenome.from_dict({"1": "A" * 200})
        reads = [self.make_read(), self.make_read(name="r2", pos=10)]
        path = tmp_path / "aln.sam"
        write_sam(reads, path, reference=ref)
        loaded = list(parse_sam(path))
        assert [r.name for r in loaded] == ["r1", "r2"]
        header = path.read_text().splitlines()[1]
        assert header == "@SQ\tSN:1\tLN:200"

    def test_malformed_line_rejected(self):
        with pytest.raises(SamError):
            parse_read("too\tfew\tfields")
