"""Unit tests for interval arithmetic and the germline genotyper."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.genomics.cigar import Cigar
from repro.genomics.intervals import (
    GenomicInterval,
    cluster_points,
    complement,
    intersect,
    merge_intervals,
    total_span,
)
from repro.genomics.read import Read
from repro.genomics.reference import Contig, ReferenceGenome
from repro.genomics.sequence import random_bases
from repro.variants.germline import (
    Genotype,
    GenotyperConfig,
    GermlineGenotyper,
)


def iv(chrom, start, end):
    return GenomicInterval(chrom, start, end)


class TestIntervals:
    def test_validation(self):
        with pytest.raises(ValueError):
            iv("1", 5, 5)
        with pytest.raises(ValueError):
            iv("1", -1, 5)

    def test_merge_touching_and_gapped(self):
        merged = merge_intervals([iv("1", 0, 10), iv("1", 10, 20),
                                  iv("1", 25, 30)])
        assert merged == [iv("1", 0, 20), iv("1", 25, 30)]
        with_gap = merge_intervals([iv("1", 0, 10), iv("1", 13, 20)], gap=5)
        assert with_gap == [iv("1", 0, 20)]

    def test_merge_respects_chromosomes(self):
        merged = merge_intervals([iv("1", 0, 10), iv("2", 5, 15)])
        assert len(merged) == 2

    def test_intersect(self):
        result = intersect([iv("1", 0, 100)],
                           [iv("1", 50, 150), iv("2", 0, 10)])
        assert result == [iv("1", 50, 100)]

    def test_complement(self):
        reference = ReferenceGenome.from_dict({"1": "A" * 100})
        holes = complement([iv("1", 10, 20), iv("1", 50, 60)], reference)
        assert holes == [iv("1", 0, 10), iv("1", 20, 50), iv("1", 60, 100)]

    def test_total_span_deduplicates(self):
        assert total_span([iv("1", 0, 10), iv("1", 5, 15)]) == 15

    @given(st.lists(st.tuples(st.integers(0, 500), st.integers(1, 40)),
                    max_size=20))
    @settings(max_examples=40, deadline=None)
    def test_merge_invariants(self, raw):
        intervals = [iv("1", s, s + l) for s, l in raw]
        merged = merge_intervals(intervals)
        # Sorted and disjoint.
        for a, b in zip(merged, merged[1:]):
            assert a.end < b.start or a.chrom != b.chrom
        # Every input point stays covered.
        for interval in intervals:
            assert any(m.start <= interval.start and interval.end <= m.end
                       for m in merged)

    def test_cluster_points_matches_targets_semantics(self):
        intervals = cluster_points([100, 150, 400], merge_distance=100,
                                   flank=10, contig_length=1_000,
                                   max_span=500)
        assert intervals == [(90, 161), (390, 411)]

    def test_cluster_points_splits_oversized(self):
        intervals = cluster_points(list(range(0, 300, 10)),
                                   merge_distance=20, flank=0,
                                   contig_length=1_000, max_span=100)
        assert all(end - start <= 100 for start, end in intervals)

    def test_cluster_validation(self):
        with pytest.raises(ValueError):
            cluster_points([1], -1, 0, 10, 10)
        with pytest.raises(ValueError):
            cluster_points([1], 0, 0, 10, 0)


class TestGermlineGenotyper:
    @pytest.fixture
    def reference(self):
        rng = np.random.default_rng(61)
        return ReferenceGenome([Contig("1", random_bases(500, rng))])

    def pileup_reads(self, reference, pos, alt_fraction, depth=20, alt=None):
        window = reference.fetch("1", 100, 160)
        ref_base = window[pos - 100]
        alt = alt or ("A" if ref_base != "A" else "C")
        reads = []
        for i in range(depth):
            bases = list(window)
            if i < round(depth * alt_fraction):
                bases[pos - 100] = alt
            reads.append(Read(f"r{i}", "1", 100, "".join(bases),
                              np.full(60, 35, np.uint8), Cigar.parse("60M")))
        return reads, alt

    def test_homozygous_alt(self, reference):
        reads, alt = self.pileup_reads(reference, 130, alt_fraction=1.0)
        calls = GermlineGenotyper(reference).call(reads)
        assert len(calls) == 1
        assert calls[0].genotype is Genotype.HOM_ALT
        assert calls[0].alt == alt
        assert calls[0].genotype_quality > 20

    def test_heterozygous(self, reference):
        reads, _ = self.pileup_reads(reference, 130, alt_fraction=0.5)
        calls = GermlineGenotyper(reference).call(reads)
        assert len(calls) == 1
        assert calls[0].genotype is Genotype.HET

    def test_clean_pileup_no_calls(self, reference):
        reads, _ = self.pileup_reads(reference, 130, alt_fraction=0.0)
        assert GermlineGenotyper(reference).call(reads) == []

    def test_low_fraction_somatic_is_missed(self, reference):
        """The regime the paper targets: a diploid germline model calls
        10% allele fraction HOM_REF -- somatic calling needs the
        dedicated caller."""
        reads, _ = self.pileup_reads(reference, 130, alt_fraction=0.1,
                                     depth=30)
        assert GermlineGenotyper(reference).call(reads) == []

    def test_depth_floor(self, reference):
        reads, _ = self.pileup_reads(reference, 130, alt_fraction=1.0,
                                     depth=4)
        assert GermlineGenotyper(reference).call(reads) == []

    def test_config_validation(self):
        with pytest.raises(ValueError):
            GenotyperConfig(heterozygosity=0.7)
        with pytest.raises(ValueError):
            GenotyperConfig(min_depth=0)
