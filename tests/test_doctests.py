"""Run the worked-example doctests as part of tier-1.

The WHD kernel docstrings carry the paper's Figure 4 example (m=7, n=4,
k=0..3) end to end, and the engine modules carry their own small worked
examples. Running them here keeps the documentation honest: if a kernel
change breaks a documented example, tier-1 fails before CI's dedicated
doctest step does.
"""

import doctest
import importlib

import pytest

DOCUMENTED_MODULES = [
    "repro.realign.whd",
    "repro.engine.batch",
    "repro.engine.bitpack",
    "repro.engine.native",
    "repro.engine.autotune",
    "repro.engine.prefilter",
    "repro.engine.memo",
    "repro.engine.parallel",
    "repro.shard.plane",
    "repro.shard.cache",
    "repro.serve.metrics",
    "repro.serve.request",
    "repro.serve.loadgen",
    "repro.workloads.serving",
]


@pytest.mark.parametrize("module_name", DOCUMENTED_MODULES)
def test_module_doctests(module_name):
    # Importing repro.core.system first sidesteps the pre-existing
    # resilience <-> core import cycle for any module that touches it.
    importlib.import_module("repro.core.system")
    module = importlib.import_module(module_name)
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0, (
        f"{module_name}: {results.failed} doctest(s) failed"
    )
    assert results.attempted > 0, (
        f"{module_name} has no doctests -- its worked examples were removed"
    )
