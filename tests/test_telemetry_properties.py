"""Property tests for the telemetry invariants (hypothesis).

The telemetry layer is only trustworthy if its numbers obey the
accounting identities by construction, for *every* workload the
schedulers can see -- not just the fixtures other tests use. These
properties pin:

- per-unit ``busy + idle == makespan`` (the counters partition time);
- sum of a unit's compute-span durations == its busy cycles (the span
  timeline and the counter board describe the same run);
- ``occupancy`` always lands in ``[0, 1]``;
- the vectorized and scalar WHD kernels report identical ``kernel.*``
  counters for the same site;
- enabling telemetry changes no functional output -- realignment
  grids, makespans, schedules -- fault-free *and* under chaos;
- a fault-free recovery run is span-identical to ``schedule_async``.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.scheduler import (
    ScheduledTarget,
    schedule_async,
    schedule_sync,
)
from repro.realign.whd import realign_site
from repro.resilience.policy import ResilienceConfig
from repro.resilience.recovery import schedule_with_recovery
from repro.telemetry import CAT_COMPUTE, CAT_FAULTED, Telemetry, unit_track
from repro.telemetry.metrics import derive_schedule_metrics
from repro.workloads.generator import BENCH_PROFILE, synthesize_site

SLOW = settings(
    max_examples=20, deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

#: (transfer_cycles, compute_cycles) pairs -> a ScheduledTarget list.
targets_lists = st.lists(
    st.tuples(st.integers(0, 300), st.integers(1, 4000)),
    min_size=1, max_size=16,
).map(lambda pairs: [
    ScheduledTarget(index=i, transfer_cycles=t, compute_cycles=c)
    for i, (t, c) in enumerate(pairs)
])

unit_counts = st.integers(min_value=1, max_value=6)


def _schedule(scheme: str, targets, num_units, telemetry,
              chaos=None):
    if scheme == "sync":
        return schedule_sync(targets, num_units, telemetry=telemetry)
    if scheme == "async":
        return schedule_async(targets, num_units, telemetry=telemetry)
    config = chaos if chaos is not None else ResilienceConfig()
    return schedule_with_recovery(targets, num_units, config,
                                  telemetry=telemetry)


class TestTimeAccountingInvariants:
    @SLOW
    @given(targets=targets_lists, num_units=unit_counts,
           scheme=st.sampled_from(["sync", "async", "recovery"]))
    def test_busy_plus_idle_is_makespan_for_every_unit(
        self, targets, num_units, scheme
    ):
        telemetry = Telemetry()
        result = _schedule(scheme, targets, num_units, telemetry)
        makespan = result.makespan
        blocks = list(telemetry.counters.iter_units())
        assert blocks, "scheduling recorded no unit counters"
        for block in blocks:
            assert block.busy_cycles + block.idle_cycles == makespan, (
                f"{scheme}: unit {block.unit} busy {block.busy_cycles} + "
                f"idle {block.idle_cycles} != makespan {makespan}"
            )
            assert 0 <= block.stall_cycles <= block.idle_cycles

    @SLOW
    @given(targets=targets_lists, num_units=unit_counts,
           scheme=st.sampled_from(["sync", "async"]))
    def test_span_durations_sum_to_busy_cycles(
        self, targets, num_units, scheme
    ):
        telemetry = Telemetry()
        _schedule(scheme, targets, num_units, telemetry)
        for block in telemetry.counters.iter_units():
            if block.unit < 0:
                continue
            track = unit_track(block.unit)
            span_cycles = sum(
                span.duration for span in telemetry.spans
                if span.track == track
                and span.category in (CAT_COMPUTE, CAT_FAULTED)
            )
            assert span_cycles == block.busy_cycles

    @SLOW
    @given(targets=targets_lists, num_units=unit_counts,
           scheme=st.sampled_from(["sync", "async", "recovery"]),
           seed=st.integers(0, 2**16), rate=st.floats(0.0, 0.4))
    def test_occupancy_bounded_even_under_chaos(
        self, targets, num_units, scheme, seed, rate
    ):
        telemetry = Telemetry()
        chaos = None
        if scheme == "recovery" and rate > 0.0:
            chaos = ResilienceConfig.chaos(seed, rate)
        _schedule(scheme, targets, num_units, telemetry, chaos=chaos)
        for block in telemetry.counters.iter_units():
            assert 0.0 <= block.occupancy <= 1.0
        metrics = derive_schedule_metrics(telemetry)
        assert 0.0 <= metrics.mean_occupancy <= 1.0
        assert 0.0 <= metrics.recovery_overhead_fraction <= 1.0
        assert metrics.critical_path_ticks <= metrics.makespan_ticks


class TestKernelCounters:
    @SLOW
    @given(seed=st.integers(0, 10**6),
           complexity=st.floats(0.5, 2.0))
    def test_vectorized_and_scalar_kernels_count_identically(
        self, seed, complexity
    ):
        site = synthesize_site(np.random.default_rng(seed), BENCH_PROFILE,
                               complexity=complexity)
        vec, scalar = Telemetry(), Telemetry()
        result_vec = realign_site(site, vectorized=True, telemetry=vec)
        result_scalar = realign_site(site, vectorized=False,
                                     telemetry=scalar)
        assert vec.counters.flat() == scalar.counters.flat()
        assert result_vec.same_outputs(result_scalar)


class TestTelemetryIsPurelyObservational:
    @SLOW
    @given(targets=targets_lists, num_units=unit_counts,
           scheme=st.sampled_from(["sync", "async", "recovery"]),
           seed=st.integers(0, 2**16), rate=st.floats(0.0, 0.3))
    def test_schedules_identical_with_and_without_telemetry(
        self, targets, num_units, scheme, seed, rate
    ):
        chaos = None
        if scheme == "recovery" and rate > 0.0:
            chaos = ResilienceConfig.chaos(seed, rate)
        bare = _schedule(scheme, targets, num_units, None, chaos=chaos)
        chaos2 = (ResilienceConfig.chaos(seed, rate)
                  if chaos is not None else None)
        traced = _schedule(scheme, targets, num_units, Telemetry(),
                           chaos=chaos2)
        assert bare.makespan == traced.makespan
        assert bare.spans == traced.spans
        if scheme == "recovery":
            assert bare.completions == traced.completions
            assert bare.completion_units == traced.completion_units

    @settings(max_examples=6, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(seed=st.integers(0, 10**4), rate=st.sampled_from([0.0, 0.15]))
    def test_system_output_bytes_identical_with_telemetry_on(
        self, seed, rate
    ):
        from repro.core.system import AcceleratedIRSystem, SystemConfig

        rng = np.random.default_rng(seed)
        sites = [synthesize_site(rng, BENCH_PROFILE) for _ in range(4)]
        resilience = (ResilienceConfig.chaos(seed, rate)
                      if rate > 0.0 else None)

        def run(telemetry):
            config = SystemConfig(name="IR ACC", lanes=32,
                                  scheduling="async",
                                  resilience=resilience)
            return AcceleratedIRSystem(config).run(sites,
                                                   telemetry=telemetry)

        bare, traced = run(None), run(Telemetry())
        assert bare.total_seconds == traced.total_seconds
        assert bare.fallback_site_indices == traced.fallback_site_indices
        for a, b in zip(bare.unit_results, traced.unit_results):
            assert a.matches(b)
            assert a.comparisons == b.comparisons
            assert a.cycles.total == b.cycles.total


class TestRecoveryEquivalence:
    @SLOW
    @given(targets=targets_lists, num_units=unit_counts)
    def test_fault_free_recovery_is_span_identical_to_async(
        self, targets, num_units
    ):
        async_t, recovery_t = Telemetry(), Telemetry()
        async_result = schedule_async(targets, num_units,
                                      telemetry=async_t)
        recovery_result = schedule_with_recovery(
            targets, num_units, ResilienceConfig(), telemetry=recovery_t,
        )
        assert set(async_t.spans) == set(recovery_t.spans)
        assert async_result.makespan == recovery_result.makespan
        async_counters = async_t.counters.flat()
        recovery_counters = recovery_t.counters.flat()
        for block in async_t.counters.iter_units():
            prefix = (f"unit{block.unit}." if block.unit >= 0
                      else None)
            if prefix is None:
                continue
            for key in ("busy_cycles", "idle_cycles", "stall_cycles",
                        "targets_completed"):
                assert (async_counters[prefix + key]
                        == recovery_counters[prefix + key])


if __name__ == "__main__":
    pytest.main([__file__, "-q"])
