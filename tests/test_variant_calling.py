"""Unit tests for the somatic caller, VCF IO, and truth evaluation."""

import io

import numpy as np
import pytest

from repro.genomics.cigar import Cigar
from repro.genomics.read import Read
from repro.genomics.reference import ReferenceGenome
from repro.genomics.sequence import random_bases
from repro.genomics.simulate import SimulationProfile, simulate_sample
from repro.genomics.variants import Variant, VariantKind
from repro.refinement.pipeline import RefinementPipeline
from repro.variants.caller import CallerConfig, SomaticCaller, VariantCall
from repro.variants.evaluation import evaluate_calls
from repro.variants.vcf import VcfError, format_vcf, parse_vcf, write_vcf


def make_read(name, pos, seq, cigar=None, qual=35):
    return Read(name, "1", pos, seq, np.full(len(seq), qual, np.uint8),
                Cigar.parse(cigar or f"{len(seq)}M"))


@pytest.fixture
def reference():
    rng = np.random.default_rng(41)
    return ReferenceGenome.from_dict({"1": random_bases(1_000, rng)})


class TestSnpCalling:
    def test_calls_supported_snp(self, reference):
        window = reference.fetch("1", 100, 130)
        alt_base = "A" if window[15] != "A" else "C"
        mutated = window[:15] + alt_base + window[16:]
        reads = [make_read(f"r{i}", 100, mutated) for i in range(5)]
        reads += [make_read(f"c{i}", 100, window) for i in range(3)]
        calls = SomaticCaller(reference).call(reads)
        snps = [c for c in calls if c.kind is VariantKind.SNP]
        assert len(snps) == 1
        assert snps[0].pos == 115
        assert snps[0].alt == alt_base
        assert snps[0].alt_count == 5
        assert snps[0].depth == 8

    def test_low_support_filtered(self, reference):
        window = reference.fetch("1", 100, 130)
        alt_base = "A" if window[15] != "A" else "C"
        mutated = window[:15] + alt_base + window[16:]
        reads = [make_read("r", 100, mutated)]
        reads += [make_read(f"c{i}", 100, window) for i in range(9)]
        assert SomaticCaller(reference).call(reads) == []

    def test_low_quality_support_filtered(self, reference):
        window = reference.fetch("1", 100, 130)
        alt_base = "A" if window[15] != "A" else "C"
        mutated = window[:15] + alt_base + window[16:]
        reads = [make_read(f"r{i}", 100, mutated, qual=5) for i in range(5)]
        config = CallerConfig(min_quality_sum=60)
        assert SomaticCaller(reference, config).call(reads) == []


class TestIndelCalling:
    def test_calls_deletion(self, reference):
        window = reference.fetch("1", 200, 260)
        donor = window[:20] + window[25:]
        reads = [
            make_read(f"r{i}", 200, donor[:40], "20M5D20M") for i in range(4)
        ]
        calls = SomaticCaller(reference).call(reads)
        dels = [c for c in calls if c.kind is VariantKind.DELETION]
        assert len(dels) == 1
        assert dels[0].pos == 219
        assert len(dels[0].ref) - len(dels[0].alt) == 5

    def test_calls_insertion(self, reference):
        window = reference.fetch("1", 200, 240)
        donor = window[:20] + "TTT" + window[20:]
        reads = [
            make_read(f"r{i}", 200, donor[:43], "20M3I20M") for i in range(4)
        ]
        calls = SomaticCaller(reference).call(reads)
        ins = [c for c in calls if c.kind is VariantKind.INSERTION]
        assert len(ins) == 1
        assert ins[0].alt.endswith("TTT")

    def test_config_validation(self):
        with pytest.raises(ValueError):
            CallerConfig(min_depth=0)
        with pytest.raises(ValueError):
            CallerConfig(min_allele_fraction=2.0)


class TestVcf:
    def make_call(self):
        return VariantCall("1", 99, "A", "ATT", 90.0, depth=30, alt_count=9)

    def test_roundtrip(self, tmp_path, reference):
        calls = [self.make_call()]
        path = tmp_path / "calls.vcf"
        write_vcf(calls, path, reference)
        loaded = parse_vcf(path)
        assert loaded == calls

    def test_format_one_based(self):
        text = format_vcf([self.make_call()])
        record = [l for l in text.splitlines() if not l.startswith("#")][0]
        assert record.split("\t")[1] == "100"
        assert "DP=30" in record and "AC=9" in record

    def test_malformed_rejected(self):
        with pytest.raises(VcfError):
            parse_vcf(io.StringIO("1\t10\t.\tA\n"))

    def test_allele_fraction(self):
        assert self.make_call().allele_fraction == pytest.approx(0.3)


class TestEvaluation:
    def test_exact_snp_match(self):
        truth = [Variant("1", 50, "A", "T")]
        calls = [VariantCall("1", 50, "A", "T", 60.0, 20, 8)]
        result = evaluate_calls(calls, truth)
        assert result.precision == 1.0 and result.recall == 1.0
        assert result.f1 == 1.0

    def test_indel_position_tolerance(self):
        truth = [Variant("1", 50, "ATT", "A")]
        calls = [VariantCall("1", 55, "GCC", "G", 60.0, 20, 8)]
        result = evaluate_calls(calls, truth)
        assert result.recall == 1.0

    def test_wrong_size_indel_not_matched(self):
        truth = [Variant("1", 50, "ATT", "A")]
        calls = [VariantCall("1", 50, "ATTT", "A", 60.0, 20, 8)]
        result = evaluate_calls(calls, truth)
        assert result.true_positives == []

    def test_truth_matches_at_most_one_call(self):
        truth = [Variant("1", 50, "A", "T")]
        calls = [VariantCall("1", 50, "A", "T", 60.0, 20, 8)] * 2
        result = evaluate_calls(calls, truth)
        assert len(result.true_positives) == 1
        assert len(result.false_positives) == 1

    def test_empty_sets(self):
        result = evaluate_calls([], [])
        assert result.precision == 0.0 and result.recall == 0.0


class TestEndToEndAccuracy:
    def test_realignment_improves_precision(self):
        """The paper's motivation, closed loop: IR reduces false calls."""
        profile = SimulationProfile(indel_rate=8e-4, snp_rate=1e-3,
                                    coverage=40, hotspot_mass=0.1)
        sample = simulate_sample({"1": 25_000}, profile=profile, seed=11)
        caller = SomaticCaller(sample.reference)
        raw = evaluate_calls(caller.call(sample.reads), sample.truth_variants)
        refined = RefinementPipeline(sample.reference).run(sample.reads)
        post = evaluate_calls(caller.call(refined.reads),
                              sample.truth_variants)
        assert len(post.false_positives) < len(raw.false_positives)
        assert post.precision > raw.precision

    def test_filters_after_realignment_remove_residual_artifacts(self):
        """Hard filters mop up the residuals the 256-read hardware cap
        leaves behind (clustered mismatch events), at little recall
        cost."""
        from repro.variants.filters import apply_filters

        profile = SimulationProfile(indel_rate=8e-4, snp_rate=1e-3,
                                    coverage=40, hotspot_mass=0.1)
        sample = simulate_sample({"1": 25_000}, profile=profile, seed=11)
        caller = SomaticCaller(sample.reference)
        refined = RefinementPipeline(sample.reference).run(sample.reads)
        post_calls = caller.call(refined.reads)
        post = evaluate_calls(post_calls, sample.truth_variants)
        final = evaluate_calls(apply_filters(post_calls).passed,
                               sample.truth_variants)
        assert final.precision >= post.precision
        assert final.recall >= post.recall - 0.1
        assert final.f1 > post.f1
