"""Integration tests for the accelerated IR system and host planning."""

import numpy as np
import pytest

from repro.core.host import HostPlanError, plan_targets
from repro.core.isa import BufferId
from repro.core.system import (
    AcceleratedIRSystem,
    AcceleratedRealigner,
    SystemConfig,
)
from repro.genomics.simulate import SimulationProfile, simulate_sample
from repro.hw.memory import DdrChannelModel
from repro.realign.realigner import IndelRealigner
from repro.realign.whd import realign_site
from repro.workloads.generator import BENCH_PROFILE, synthesize_site


@pytest.fixture(scope="module")
def sites():
    rng = np.random.default_rng(10)
    return [synthesize_site(rng, BENCH_PROFILE, complexity=0.5)
            for _ in range(12)]


class TestHostPlan:
    def test_addresses_disjoint_and_aligned(self, sites):
        plan = plan_targets(sites)
        intervals = []
        for target, site in zip(plan.targets, sites):
            sizes = {
                BufferId.CONSENSUS_BASES: sum(len(c) for c in site.consensuses),
                BufferId.READ_BASES: sum(len(r) for r in site.reads),
                BufferId.READ_QUALS: sum(len(r) for r in site.reads),
                BufferId.OUT_REALIGN: site.num_reads,
                BufferId.OUT_POSITIONS: 4 * site.num_reads,
            }
            for buffer_id, addr in target.buffer_addrs.items():
                assert addr % 64 == 0
                intervals.append((addr, addr + sizes[buffer_id]))
        intervals.sort()
        for (s1, e1), (s2, _e2) in zip(intervals, intervals[1:]):
            assert e1 <= s2

    def test_command_streams_count(self, sites):
        plan = plan_targets(sites)
        expected = sum(8 + s.num_consensuses for s in sites)
        assert plan.total_commands == expected
        assert plan.config_cycles() > 0

    def test_capacity_enforced(self, sites):
        tiny = DdrChannelModel(capacity_bytes=128)
        with pytest.raises(HostPlanError):
            plan_targets(sites, ddr=tiny)


class TestSystemConfig:
    def test_presets(self):
        assert SystemConfig.taskp().lanes == 1
        assert SystemConfig.taskp().scheduling == "sync"
        assert SystemConfig.taskp_async().scheduling == "async"
        assert SystemConfig.iracc().lanes == 32

    def test_validation(self):
        with pytest.raises(ValueError):
            SystemConfig(num_units=0)
        with pytest.raises(ValueError):
            SystemConfig(scheduling="later")

    def test_peak_rate(self):
        scalar = AcceleratedIRSystem(SystemConfig(lanes=1))
        assert scalar.peak_comparisons_per_second() == 32 * 125e6


class TestSystemRun:
    def test_functional_outputs_match_software(self, sites):
        run = AcceleratedIRSystem(SystemConfig.iracc()).run(sites)
        for site, result in zip(sites, run.unit_results):
            assert result.matches(realign_site(site))

    def test_design_point_ordering(self, sites):
        times = {}
        for config in (SystemConfig.taskp(), SystemConfig.taskp_async(),
                       SystemConfig.iracc()):
            times[config.name] = AcceleratedIRSystem(config).run(
                sites, replication=8
            ).total_seconds
        assert times["IRAcc-TaskP-Async"] <= times["IRAcc-TaskP"]
        assert times["IR ACC"] < times["IRAcc-TaskP-Async"]

    def test_replication_semantics(self, sites):
        system = AcceleratedIRSystem(SystemConfig.iracc())
        once = system.run(sites, replication=1)
        many = system.run(sites, replication=8)
        assert many.targets_processed == 8 * once.targets_processed
        assert many.comparisons == 8 * once.comparisons
        # Unit results are computed once per distinct site.
        assert len(many.unit_results) == len(sites)
        # More rounds amortize the tail: utilization cannot degrade much.
        assert many.utilization >= once.utilization - 0.05
        with pytest.raises(ValueError):
            system.run(sites, replication=0)

    def test_statistics(self, sites):
        run = AcceleratedIRSystem(SystemConfig.iracc()).run(sites)
        assert 0.0 < run.pruned_fraction < 1.0
        assert run.comparisons_per_second > 0
        assert run.effective_comparisons_per_second >= run.comparisons_per_second
        assert 0.0 <= run.transfer_fraction < 1.0
        assert run.compute_cycles == sum(
            r.cycles.total for r in run.unit_results
        )


class TestAcceleratedRealigner:
    def test_matches_software_realigner_end_to_end(self):
        profile = SimulationProfile(indel_rate=1.5e-3, coverage=25)
        sample = simulate_sample({"1": 15_000}, profile=profile, seed=21)
        software, _ = IndelRealigner(sample.reference).realign(sample.reads)
        accelerated, run, report = AcceleratedRealigner(
            sample.reference
        ).realign(sample.reads)
        assert report.reads_realigned > 0
        assert run.total_seconds > 0
        for a, b in zip(software, accelerated):
            assert a.pos == b.pos
            assert str(a.cigar) == str(b.cigar)
