"""The CLI surface cannot drift from its documentation.

PR 7 shipped an ``evaluate`` subcommand that ``--help`` never
mentioned. The fix is structural: the parser's subcommands, the
``COMMANDS`` registry (which generates the ``--help`` epilog), and
``docs/CLI.md`` are all checked against each other here, so adding a
subcommand without documenting it fails CI instead of shipping.
"""

import re
from pathlib import Path

from repro.__main__ import COMMANDS, _epilog, build_parser

REPO_ROOT = Path(__file__).resolve().parent.parent
CLI_DOC = REPO_ROOT / "docs" / "CLI.md"


def _subcommands():
    parser = build_parser()
    actions = [action for action in parser._subparsers._group_actions
               if hasattr(action, "choices")]
    assert len(actions) == 1
    return dict(actions[0].choices)


class TestCommandRegistry:
    def test_every_subcommand_is_registered(self):
        missing = set(_subcommands()) - set(COMMANDS)
        assert not missing, (
            f"subcommands missing from COMMANDS (so missing from --help "
            f"epilog and docs): {sorted(missing)}"
        )

    def test_no_stale_registry_entries(self):
        stale = set(COMMANDS) - set(_subcommands())
        assert not stale, f"COMMANDS documents removed subcommands: {stale}"

    def test_every_subcommand_has_help_text(self):
        for name, description in COMMANDS.items():
            assert description.strip(), f"{name} has an empty description"

    def test_regressed_commands_are_present(self):
        # The specific regression this file exists to prevent, plus the
        # serving pair added alongside it.
        for name in ("evaluate", "serve", "loadgen"):
            assert name in COMMANDS
            assert name in _subcommands()


class TestHelpEpilog:
    def test_epilog_lists_every_command(self):
        epilog = _epilog()
        for name, description in COMMANDS.items():
            assert re.search(rf"^  {re.escape(name)}\s", epilog, re.M), (
                f"{name} missing from the --help epilog"
            )
            first_line = description.split("\n")[0][:30]
            assert first_line in epilog

    def test_epilog_points_at_the_docs(self):
        assert "docs/CLI.md" in _epilog()
        assert "docs/SERVING.md" in _epilog()


class TestCliDoc:
    def test_doc_exists(self):
        assert CLI_DOC.exists(), "docs/CLI.md is the CLI reference"

    def test_doc_lists_every_command(self):
        text = CLI_DOC.read_text()
        for name in COMMANDS:
            assert re.search(rf"`{re.escape(name)}`", text), (
                f"docs/CLI.md does not mention `{name}`"
            )

    def test_doc_descriptions_match_registry(self):
        # The index table must carry the same one-liners as --help; a
        # reworded registry entry must be reflected here.
        text = CLI_DOC.read_text()
        for name, description in COMMANDS.items():
            flat = " ".join(description.split())
            row = f"| `{name}` | {flat}"
            assert any(line.startswith(row)
                       for line in text.splitlines()), (
                f"docs/CLI.md index row for {name} does not match "
                f"COMMANDS ({flat!r})"
            )
