"""Chaos property tests for the horizontal shard plane.

The single invariant, mirroring ``test_worker_chaos.py`` one level up:
for *any* workload, *any* shard count, *any* region partition, and
*any* seeded schedule of shard-worker faults -- SIGKILL, hang, delay,
error -- the plane terminates and produces output byte-identical to a
fault-free serial run, with re-dispatch work bounded (every chunk is
dispatched at most ``max_attempts`` times before it is quarantined to
the exact inline path). Hypothesis drives the seeds; the fault plan's
keyed-generator design makes every failing example replayable.
"""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.engine import Engine, EngineConfig
from repro.resilience.workers import WorkerFaultPlan, WorkerRecovery
from repro.shard import ShardPlane, ShardPlaneConfig, SiteResultCache
from repro.workloads.generator import BENCH_PROFILE, synthesize_site

#: Hang magnitudes are capped well under the deadline budget so a
#: drawn hang costs one expiry (~1 s), not the default 60 s.
_PLAN_OVERRIDES = {"hang_seconds": 2.0, "delay_range": (0.001, 0.01)}
_DEADLINE = 0.75

_SITE_CACHE = {}


def _sites(n, seed, span):
    """Sites spread over region buckets of width ``span``."""
    key = (n, seed, span)
    if key not in _SITE_CACHE:
        rng = np.random.default_rng(seed)
        _SITE_CACHE[key] = [
            synthesize_site(rng, BENCH_PROFILE,
                            complexity=0.25 + 0.2 * (i % 4),
                            start=int(rng.integers(0, 64)) * span)
            for i in range(n)
        ]
    return _SITE_CACHE[key]


def _recovery(chaos_seed, rate):
    return WorkerRecovery(
        plan=WorkerFaultPlan.chaos(chaos_seed, rate, **_PLAN_OVERRIDES),
        chunk_deadline=_DEADLINE,
    )


def _assert_identical(got, want):
    assert len(got) == len(want)
    for a, b in zip(got, want):
        assert a.same_outputs(b)
        np.testing.assert_array_equal(a.min_whd, b.min_whd)
        np.testing.assert_array_equal(a.new_pos, b.new_pos)


class TestShardChaosProperties:
    @given(
        workload_seed=st.integers(0, 10_000),
        n=st.integers(2, 10),
        shards=st.integers(1, 4),
        batch=st.integers(1, 3),
        region_span=st.sampled_from([512, 4096, 65536]),
    )
    @settings(max_examples=4, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_any_partition_matches_serial(
        self, workload_seed, n, shards, batch, region_span
    ):
        """Fault-free: any shard count x any region partition merges to
        the serial answer, byte for byte."""
        sites = _sites(n, workload_seed, region_span)
        want = Engine(EngineConfig(workers=1, batch=batch)).run_sites(sites)
        plane_config = ShardPlaneConfig(shards=shards,
                                        region_span=region_span)
        with ShardPlane(EngineConfig(batch=batch),
                        plane=plane_config) as plane:
            _assert_identical(plane.run_sites(sites), want)

    @given(
        workload_seed=st.integers(0, 10_000),
        chaos_seed=st.integers(0, 10_000),
        n=st.integers(2, 8),
        shards=st.integers(2, 3),
        batch=st.integers(1, 3),
        rate=st.floats(0.05, 0.5),
    )
    @settings(max_examples=4, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_shard_chaos_matches_serial_with_bounded_redispatch(
        self, workload_seed, chaos_seed, n, shards, batch, rate
    ):
        sites = _sites(n, workload_seed, 4096)
        want = Engine(EngineConfig(workers=1, batch=batch)).run_sites(sites)
        plane_config = ShardPlaneConfig(shards=shards)
        with ShardPlane(EngineConfig(batch=batch), plane=plane_config,
                        recovery=_recovery(chaos_seed, rate)) as plane:
            _assert_identical(plane.run_sites(sites), want)
            counters = dict(plane.recovery_counters)
        # Re-dispatch work is bounded: every chunk gets at most
        # max_attempts dispatches before inline quarantine, and each
        # chunk completes exactly once.
        chunks = counters.get("shard.completed_chunks", 0)
        assert chunks >= 1
        assert counters.get("shard.dispatched_chunks", 0) <= (
            chunks * plane_config.max_attempts
        )
        assert counters.get("shard.sites", 0) == n

    @given(
        chaos_seed=st.integers(0, 10_000),
        rate=st.floats(0.1, 0.6),
    )
    @settings(max_examples=3, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_chaos_with_cache_stays_identical(self, chaos_seed, rate):
        """Cold pass under chaos, warm pass under the same chaos plan:
        both byte-identical to serial, and the warm pass never
        re-dispatches what the cache already holds."""
        sites = _sites(6, seed=4242, span=4096)
        want = Engine(EngineConfig(workers=1, batch=2)).run_sites(sites)
        cache = SiteResultCache.from_megabytes(32)
        with ShardPlane(EngineConfig(batch=2),
                        plane=ShardPlaneConfig(shards=2),
                        cache=cache,
                        recovery=_recovery(chaos_seed, rate)) as plane:
            _assert_identical(plane.run_sites(sites), want)
            _assert_identical(plane.run_sites(sites), want)
            warm = dict(plane.recovery_counters)
        assert warm.get("shard.cache_hits", 0) == len(sites)
        assert "shard.dispatched_chunks" not in warm

    @given(chaos_seed=st.integers(0, 10_000))
    @settings(max_examples=3, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_total_shard_loss_drains_inline(self, chaos_seed):
        """Workers that always die leave the inline path to finish the
        run -- forward progress never depends on a worker surviving."""
        sites = _sites(4, seed=7, span=4096)
        want = Engine(EngineConfig(workers=1, batch=2)).run_sites(sites)
        plane_config = ShardPlaneConfig(shards=2, max_attempts=2,
                                        quarantine_after=1)
        with ShardPlane(EngineConfig(batch=2), plane=plane_config,
                        recovery=_recovery(chaos_seed, 1.0)) as plane:
            _assert_identical(plane.run_sites(sites), want)
            counters = dict(plane.recovery_counters)
        assert counters.get("shard.completed_chunks", 0) >= 1
