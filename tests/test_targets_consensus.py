"""Unit tests for target identification and consensus generation."""

import numpy as np
import pytest

from repro.genomics.cigar import Cigar, CigarOp
from repro.genomics.read import Read
from repro.genomics.reference import ReferenceGenome
from repro.genomics.sequence import random_bases
from repro.realign.consensus import (
    ObservedIndel,
    apply_indel_to_window,
    build_site,
    generate_consensuses,
    observed_indels,
    realigned_read_placement,
)
from repro.realign.site import SiteLimits
from repro.realign.targets import (
    RealignmentTarget,
    TargetCreatorConfig,
    identify_targets,
    reads_for_target,
)


def make_read(name, pos, seq, cigar, chrom="1", dup=False):
    return Read(name, chrom, pos, seq, np.full(len(seq), 30, np.uint8),
                Cigar.parse(cigar), is_duplicate=dup)


@pytest.fixture
def reference():
    rng = np.random.default_rng(77)
    return ReferenceGenome.from_dict({"1": random_bases(5_000, rng)})


class TestTargetIdentification:
    def test_indel_read_seeds_target(self, reference):
        reads = [make_read("a", 1000, "A" * 50, "20M2D30M")]
        targets = identify_targets(reads, reference,
                                   TargetCreatorConfig(use_mismatch_clusters=False))
        assert len(targets) == 1
        target = targets[0]
        assert target.start <= 1020 < target.end

    def test_nearby_indels_merge(self, reference):
        reads = [
            make_read("a", 1000, "A" * 50, "20M2D30M"),
            make_read("b", 1040, "A" * 50, "30M1I19M"),
        ]
        config = TargetCreatorConfig(merge_distance=100,
                                     use_mismatch_clusters=False)
        assert len(identify_targets(reads, reference, config)) == 1

    def test_distant_indels_stay_separate(self, reference):
        reads = [
            make_read("a", 500, "A" * 50, "20M2D30M"),
            make_read("b", 3000, "A" * 50, "30M1I19M"),
        ]
        config = TargetCreatorConfig(merge_distance=100,
                                     use_mismatch_clusters=False)
        assert len(identify_targets(reads, reference, config)) == 2

    def test_clean_reads_no_targets(self, reference):
        seq = reference.fetch("1", 100, 150)
        reads = [make_read("a", 100, seq, "50M")]
        assert identify_targets(reads, reference) == []

    def test_mismatch_cluster_seeds_target(self, reference):
        # Four reads agreeing on non-reference bases at one locus.
        window = reference.fetch("1", 2000, 2050)
        wrong = "".join("A" if c != "A" else "C" for c in window)
        reads = [make_read(f"r{i}", 2000, wrong, "50M") for i in range(4)]
        targets = identify_targets(reads, reference)
        assert targets

    def test_interval_validation(self):
        with pytest.raises(ValueError):
            RealignmentTarget("1", 10, 10)
        with pytest.raises(ValueError):
            RealignmentTarget("1", -1, 10)

    def test_describe_is_one_based(self):
        assert RealignmentTarget("22", 9_999, 12_000).describe() == \
            "22:10000-12000"

    def test_oversized_cluster_is_split(self, reference):
        config = TargetCreatorConfig(
            merge_distance=2_000, flank=0, use_mismatch_clusters=False,
            limits=SiteLimits(max_consensus_length=512),
        )
        reads = [
            make_read(f"r{i}", pos, "A" * 50, "20M2D30M")
            for i, pos in enumerate(range(500, 2_500, 100))
        ]
        targets = identify_targets(reads, reference, config)
        assert len(targets) > 1
        assert all(t.span <= 256 for t in targets)


class TestReadsForTarget:
    def test_anchored_rule_and_duplicates(self, reference):
        target = RealignmentTarget("1", 1000, 1400)
        inside = make_read("in", 1100, "A" * 50, "50M")
        dup = make_read("dup", 1100, "A" * 50, "50M", dup=True)
        outside = make_read("out", 2000, "A" * 50, "50M")
        assert reads_for_target(target, [inside, dup, outside]) == [inside]


class TestObservedIndels:
    def test_collects_with_support(self):
        reads = [
            make_read("a", 100, "A" * 50, "20M2D30M"),
            make_read("b", 90, "A" * 50, "30M2D20M"),
            make_read("c", 100, "A" * 52, "20M2I30M"),
        ]
        support = observed_indels(reads)
        deletion = ObservedIndel(120, CigarOp.DELETION, 2)
        assert support[deletion] == 2
        insertion = ObservedIndel(120, CigarOp.INSERTION, 2, inserted="AA")
        assert support[insertion] == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            ObservedIndel(10, CigarOp.MATCH, 2)
        with pytest.raises(ValueError):
            ObservedIndel(10, CigarOp.INSERTION, 2, inserted="A")


class TestApplyIndel:
    def test_deletion(self):
        indel = ObservedIndel(12, CigarOp.DELETION, 3)
        assert apply_indel_to_window("ABCDEFGHIJ", 10, indel) == "ABFGHIJ"

    def test_insertion_before_position(self):
        indel = ObservedIndel(12, CigarOp.INSERTION, 2, inserted="NN")
        assert apply_indel_to_window("ABCDEFGHIJ", 10, indel) == "ABNNCDEFGHIJ"

    def test_insertion_needs_left_anchor(self):
        indel = ObservedIndel(10, CigarOp.INSERTION, 2, inserted="NN")
        assert apply_indel_to_window("ABCDEFGHIJ", 10, indel) is None

    def test_deletion_outside_window(self):
        indel = ObservedIndel(18, CigarOp.DELETION, 5)
        assert apply_indel_to_window("ABCDEFGHIJ", 10, indel) is None


class TestReadPlacement:
    def test_reference_consensus(self):
        pos, cigar = realigned_read_placement(None, 100, 7, 20)
        assert (pos, str(cigar)) == (107, "20M")

    def test_deletion_spanning(self):
        indel = ObservedIndel(150, CigarOp.DELETION, 5)
        pos, cigar = realigned_read_placement(indel, 100, 30, 40)
        assert pos == 130
        assert str(cigar) == "20M5D20M"

    def test_deletion_read_after(self):
        indel = ObservedIndel(150, CigarOp.DELETION, 5)
        pos, cigar = realigned_read_placement(indel, 100, 60, 20)
        assert (pos, str(cigar)) == (165, "20M")

    def test_deletion_read_before(self):
        indel = ObservedIndel(150, CigarOp.DELETION, 5)
        pos, cigar = realigned_read_placement(indel, 100, 10, 20)
        assert (pos, str(cigar)) == (110, "20M")

    def test_insertion_spanning(self):
        indel = ObservedIndel(150, CigarOp.INSERTION, 4, inserted="TTTT")
        # Insertion occupies consensus offsets [50, 54).
        pos, cigar = realigned_read_placement(indel, 100, 40, 30)
        assert pos == 140
        assert str(cigar) == "10M4I16M"

    def test_insertion_read_after(self):
        indel = ObservedIndel(150, CigarOp.INSERTION, 4, inserted="TTTT")
        pos, cigar = realigned_read_placement(indel, 100, 60, 20)
        assert (pos, str(cigar)) == (156, "20M")

    def test_insertion_read_starts_inside(self):
        indel = ObservedIndel(150, CigarOp.INSERTION, 4, inserted="TTTT")
        pos, cigar = realigned_read_placement(indel, 100, 52, 20)
        assert pos == 150
        assert str(cigar) == "2S18M"

    def test_insertion_clipped_at_read_end(self):
        indel = ObservedIndel(150, CigarOp.INSERTION, 4, inserted="TTTT")
        # Read covers only the first 2 inserted bases.
        pos, cigar = realigned_read_placement(indel, 100, 40, 12)
        assert pos == 140
        assert str(cigar) == "10M2I"


class TestBuildSite:
    def test_build_and_generate(self, reference):
        reads = [
            make_read(f"r{i}", 1000 + 3 * i, "A" * 50, "20M2D30M")
            for i in range(4)
        ]
        target = RealignmentTarget("1", 1000, 1400)
        window = build_site(target, reads, reference)
        assert window is not None
        site = window.site
        assert site.num_consensuses >= 2
        assert site.num_reads == 4
        assert window.indels[0] is None
        assert all(i is not None for i in window.indels[1:])
        # The alternate consensus differs from the reference window.
        assert generate_consensuses(target, reads, reference)[0] == \
            site.reference

    def test_no_indels_no_site(self, reference):
        seq = reference.fetch("1", 1000, 1050)
        reads = [make_read("a", 1000, seq, "50M")]
        target = RealignmentTarget("1", 1000, 1100)
        assert build_site(target, reads, reference) is None

    def test_no_reads_no_site(self, reference):
        target = RealignmentTarget("1", 1000, 1100)
        assert build_site(target, [], reference) is None
