"""Property tests for the streaming data plane (hypothesis).

The invariant under test is single: the streaming engine's output is
byte-identical to the barrier engine's for *any* site set, worker
count, queue depth, or transport -- including when chaos-mode fault
injection drains targets through it as the software fallback.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.engine import Engine, EngineConfig, ReorderBuffer, StreamingEngine
from repro.workloads.generator import BENCH_PROFILE, synthesize_site


def _sites(n, seed):
    rng = np.random.default_rng(seed)
    return [
        synthesize_site(rng, BENCH_PROFILE,
                        complexity=0.25 + 0.2 * (i % 4))
        for i in range(n)
    ]


class TestReorderBufferProperties:
    @given(st.permutations(list(range(12))))
    @settings(max_examples=100, deadline=None)
    def test_any_completion_order_emits_submission_order(self, order):
        buffer = ReorderBuffer()
        emitted = []
        for index in order:
            emitted.extend(buffer.push(index, index))
        assert emitted == sorted(order)
        assert buffer.pending == 0
        assert buffer.peak_pending <= len(order)

    @given(st.permutations(list(range(8))), st.integers(1, 4))
    @settings(max_examples=60, deadline=None)
    def test_windowed_submission_bounds_pending(self, order, window):
        """The engine's submission rule -- never have more than
        ``window`` chunks in flight plus parked -- keeps the buffer's
        peak below the window for every completion order."""
        buffer = ReorderBuffer()
        in_flight = set()
        pending_completions = list(order)
        submitted = 0
        while submitted < len(order) or in_flight:
            while (submitted < len(order)
                   and len(in_flight) + buffer.pending < window):
                in_flight.add(submitted)
                submitted += 1
            # Complete the earliest-drawn chunk that is in flight.
            index = next(i for i in pending_completions if i in in_flight)
            pending_completions.remove(index)
            in_flight.remove(index)
            buffer.push(index, index)
        assert buffer.peak_pending <= window
        assert buffer.pending == 0


class TestStreamingEngineProperties:
    @given(
        seed=st.integers(0, 10_000),
        n=st.integers(1, 8),
        batch=st.integers(1, 4),
        workers=st.sampled_from([1, 2]),
        depth=st.integers(1, 3),
        shmem=st.booleans(),
    )
    @settings(max_examples=12, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_matches_barrier_for_any_configuration(
        self, seed, n, batch, workers, depth, shmem
    ):
        sites = _sites(n, seed)
        with Engine(EngineConfig(workers=1, batch=batch)) as barrier:
            want = barrier.run_sites(sites)
        with StreamingEngine(
            EngineConfig(workers=workers, batch=batch),
            queue_depth=depth, use_shmem=shmem,
        ) as stream:
            got = stream.run_sites(sites)
        assert len(got) == len(want)
        for a, b in zip(got, want):
            assert a.same_outputs(b)
            np.testing.assert_array_equal(a.min_whd, b.min_whd)
            np.testing.assert_array_equal(a.new_pos, b.new_pos)


class TestFaultInjectionProperties:
    @pytest.fixture(scope="class")
    def sample(self):
        from repro.genomics.simulate import SimulationProfile, simulate_sample

        return simulate_sample(
            {"chr22": 9_000},
            profile=SimulationProfile(coverage=16.0, indel_rate=1.5e-3),
            seed=7,
        )

    @staticmethod
    def _sam(reads):
        return [(r.name, r.pos, str(r.cigar), r.seq) for r in reads]

    @given(chaos_seed=st.integers(0, 1_000),
           rate=st.floats(0.05, 0.9))
    @settings(max_examples=5, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_chaos_fallback_through_streaming_engine(
        self, sample, chaos_seed, rate
    ):
        """Chaos runs that drain targets to the software fallback stay
        byte-identical when the fallback is a streaming engine."""
        from dataclasses import replace

        from repro.core.system import AcceleratedRealigner, SystemConfig
        from repro.resilience.policy import ResilienceConfig

        clean, _run, _report = AcceleratedRealigner(
            sample.reference, SystemConfig.iracc()
        ).realign(sample.reads)
        config = replace(
            SystemConfig.iracc(),
            resilience=ResilienceConfig.chaos(chaos_seed, rate),
        )
        with StreamingEngine(EngineConfig(workers=2, batch=2)) as engine:
            faulted, _run, _report = AcceleratedRealigner(
                sample.reference, config, engine=engine
            ).realign(sample.reads)
        assert self._sam(faulted) == self._sam(clean)
