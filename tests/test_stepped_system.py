"""Validation of the analytic system model against the protocol-level sim."""

import numpy as np
import pytest

from repro.core.stepped_system import SteppedIRSystem
from repro.core.system import AcceleratedIRSystem, SystemConfig
from repro.realign.whd import realign_site
from repro.workloads.generator import BENCH_PROFILE, synthesize_site


@pytest.fixture(scope="module")
def sites():
    rng = np.random.default_rng(19)
    return [synthesize_site(rng, BENCH_PROFILE, complexity=0.5)
            for _ in range(20)]


class TestProtocolRun:
    def test_every_target_dispatched_once(self, sites):
        result = SteppedIRSystem(SystemConfig.iracc()).run(sites)
        assert result.targets_processed == len(sites)
        dispatched = sorted(target for target, _u, _s in result.starts)
        assert dispatched == list(range(len(sites)))

    def test_command_counts_match_isa(self, sites):
        result = SteppedIRSystem(SystemConfig.iracc()).run(sites)
        expected = sum(8 + site.num_consensuses for site in sites)
        assert result.commands_issued == expected
        # Every unit reuse required a polled response.
        assert result.responses_polled == len(sites)

    def test_functional_outputs_match_software(self, sites):
        result = SteppedIRSystem(SystemConfig.iracc()).run(sites)
        for site, unit_result in zip(sites, result.unit_results):
            assert unit_result.matches(realign_site(site))

    def test_no_unit_overlap(self, sites):
        config = SystemConfig(num_units=4)
        system = SteppedIRSystem(config)
        result = system.run(sites)
        per_unit = {}
        for target, unit, start in result.starts:
            end = start + result.unit_results[target].cycles.total
            per_unit.setdefault(unit, []).append((start, end))
        for intervals in per_unit.values():
            intervals.sort()
            for (s1, e1), (s2, _e2) in zip(intervals, intervals[1:]):
                assert e1 <= s2


class TestAgreementWithAnalyticModel:
    def test_makespan_close_to_scheduler(self, sites):
        """The abstract scheduler's makespan tracks the protocol-level
        one within the host-serialization overhead it abstracts away."""
        config = SystemConfig.iracc()
        stepped = SteppedIRSystem(config).run(sites)
        analytic = AcceleratedIRSystem(config).run(sites)
        analytic_cycles = config.clock.seconds_to_cycles(
            analytic.total_seconds
        )
        # The protocol sim adds AXILite configuration serialization the
        # analytic model folds into unit config cycles; agreement within
        # 20% on a 20-target workload is the fidelity claim.
        ratio = stepped.makespan_cycles / analytic_cycles
        assert 0.8 <= ratio <= 1.25

    def test_more_units_never_slower(self, sites):
        small = SteppedIRSystem(SystemConfig(num_units=2)).run(sites)
        large = SteppedIRSystem(SystemConfig(num_units=16)).run(sites)
        assert large.makespan_cycles <= small.makespan_cycles
