"""Unit tests for the telemetry subsystem and its CLI surface.

Covers the counter board, span records, derived metrics, the Chrome
trace exporter (single- and multi-session), fleet span recording, the
``python -m repro trace`` command, and the up-front output-path
validation that replaced the realigner's end-of-run failure mode.
"""

from __future__ import annotations

import json
import os
import stat

import pytest

from repro.__main__ import main as cli_main
from repro.core.scheduler import ScheduledTarget, schedule_async
from repro.telemetry import (
    CAT_COMPUTE,
    CAT_FAULTED,
    CAT_TRANSFER,
    CHANNEL_UNIT,
    HOST_UNIT,
    CounterBoard,
    Telemetry,
    TraceSpan,
    to_chrome_trace,
    unit_track,
    write_chrome_trace,
)
from repro.telemetry.metrics import derive_schedule_metrics

TARGETS = [
    ScheduledTarget(index=i, transfer_cycles=50, compute_cycles=c)
    for i, c in enumerate((400, 100, 800, 200))
]


class TestCounters:
    def test_flat_prefixes_units_and_pseudo_units(self):
        board = CounterBoard()
        board.add("schedule.targets", 4)
        board.unit(0).busy_cycles += 10
        board.unit(HOST_UNIT).targets_completed += 1
        board.unit(CHANNEL_UNIT).busy_cycles += 3
        flat = board.flat()
        assert flat["schedule.targets"] == 4
        assert flat["unit0.busy_cycles"] == 10
        assert flat["host_sw.targets_completed"] == 1
        assert flat["channel.busy_cycles"] == 3

    def test_occupancy_and_pruned_fraction(self):
        board = CounterBoard()
        block = board.unit(2)
        block.busy_cycles, block.idle_cycles = 30, 70
        block.whd_cells_evaluated, block.whd_cells_pruned = 60, 40
        assert block.total_cycles == 100
        assert block.occupancy == pytest.approx(0.3)
        assert block.pruned_fraction == pytest.approx(0.4)

    def test_unit_track_names(self):
        assert unit_track(3) == "unit 3"
        assert unit_track(HOST_UNIT) == "host-sw"
        assert unit_track(CHANNEL_UNIT) == "pcie-channel"


class TestSpans:
    def test_span_rejects_negative_duration(self):
        with pytest.raises(ValueError):
            TraceSpan(name="bad", track="unit 0", start=10, end=5)

    def test_span_sets_are_comparable(self):
        a = Telemetry()
        b = Telemetry()
        for session in (a, b):
            session.span("target 0", "unit 0", 0, 100, CAT_COMPUTE)
            session.span("xfer 0", "pcie-channel", 0, 10, CAT_TRANSFER)
        assert set(a.spans) == set(b.spans)
        b.span("target 1", "unit 1", 0, 50, CAT_COMPUTE)
        assert set(a.spans) != set(b.spans)

    def test_finalize_unit_cycles_accounting(self):
        telemetry = Telemetry()
        result = schedule_async(TARGETS, 2, telemetry=telemetry)
        for block in telemetry.counters.iter_units():
            assert block.busy_cycles + block.idle_cycles == result.makespan
            assert block.stall_cycles <= block.idle_cycles
        completed = sum(
            block.targets_completed
            for block in telemetry.counters.iter_units()
        )
        assert completed == len(TARGETS)


class TestMetrics:
    def test_critical_path_is_a_zero_slack_chain(self):
        telemetry = Telemetry()
        telemetry.span("xfer 0", "pcie-channel", 0, 10, CAT_TRANSFER)
        telemetry.span("target 0", "unit 0", 10, 110, CAT_COMPUTE)
        telemetry.span("target 1", "unit 1", 30, 90, CAT_COMPUTE)
        metrics = derive_schedule_metrics(telemetry)
        assert metrics.makespan_ticks == 110
        assert metrics.critical_path_spans == 2  # xfer 0 -> target 0
        assert metrics.critical_path_ticks == 110

    def test_recovery_overhead_counts_faulted_spans(self):
        telemetry = Telemetry()
        telemetry.span("target 0 (attempt 1)", "unit 0", 0, 40, CAT_FAULTED)
        telemetry.span("target 0", "unit 0", 40, 100, CAT_COMPUTE)
        telemetry.unit(0).busy_cycles += 100
        telemetry.unit(0).idle_cycles += 0
        metrics = derive_schedule_metrics(telemetry)
        assert metrics.recovery_overhead_fraction == pytest.approx(0.4)

    def test_describe_mentions_every_headline_number(self):
        telemetry = Telemetry()
        schedule_async(TARGETS, 2, telemetry=telemetry)
        text = derive_schedule_metrics(telemetry).describe()
        for needle in ("makespan", "occupancy", "channel utilization",
                       "critical path", "recovery overhead"):
            assert needle in text


class TestChromeTraceExport:
    def test_single_session_structure(self, tmp_path):
        telemetry = Telemetry(label="unit-test")
        schedule_async(TARGETS, 2, telemetry=telemetry)
        path = write_chrome_trace(telemetry, tmp_path / "trace.json")
        payload = json.loads(path.read_text())
        events = payload["traceEvents"]
        assert {"X", "M"} <= {event["ph"] for event in events}
        names = [event["args"]["name"] for event in events
                 if event.get("name") == "process_name"]
        assert names == ["unit-test"]
        spans = [event for event in events if event["ph"] == "X"]
        assert len(spans) == len(telemetry.spans)
        for event in spans:
            assert event["ts"] >= 0 and event["dur"] >= 0
        counters = payload["otherData"]["counters"]
        assert counters["unit0.targets_completed"] + \
            counters["unit1.targets_completed"] == len(TARGETS)

    def test_multi_session_gets_distinct_pids(self):
        a, b = Telemetry(label="async"), Telemetry(label="recovery")
        schedule_async(TARGETS, 2, telemetry=a)
        schedule_async(TARGETS, 2, telemetry=b)
        payload = to_chrome_trace([a, b])
        pids = {event["pid"] for event in payload["traceEvents"]}
        assert pids == {1, 2}
        assert set(payload["otherData"]["counters"]) == {
            "async", "recovery"
        }

    def test_empty_session_list_rejected(self):
        with pytest.raises(ValueError):
            to_chrome_trace([])

    def test_channel_sorts_before_units_before_host(self):
        telemetry = Telemetry()
        telemetry.span("a", "host-sw", 0, 1, CAT_COMPUTE)
        telemetry.span("b", "unit 1", 0, 1, CAT_COMPUTE)
        telemetry.span("c", "pcie-channel", 0, 1, CAT_TRANSFER)
        payload = to_chrome_trace(telemetry)
        order = [event["args"]["name"] for event in payload["traceEvents"]
                 if event.get("name") == "thread_name"]
        assert order == ["pcie-channel", "unit 1", "host-sw"]


class TestFleetSpans:
    def test_fleet_plan_tiles_instance_tracks(self):
        from repro.perf.fleet import FleetJob, plan_fleet, record_fleet_spans

        jobs = [FleetJob(name=f"chr{i}", seconds=100.0 + i) for i in range(6)]
        plan = plan_fleet(jobs, 2)
        telemetry = Telemetry()
        record_fleet_spans(telemetry, plan)
        assert telemetry.ticks_per_second == 1.0
        flat = telemetry.counters.flat()
        assert flat["fleet.instances"] == 2
        assert flat["fleet.jobs"] == 6
        for index, assigned in plan.assignments.items():
            track = f"instance {index}"
            spans = [s for s in telemetry.spans if s.track == track]
            assert len(spans) == len(assigned)
            clock = 0.0
            for span in spans:  # back-to-back in assignment order
                assert span.start == clock
                clock = span.end
            assert clock == sum(job.seconds for job in assigned)


class TestTraceCommand:
    def test_trace_writes_valid_chrome_trace(self, tmp_path, capsys):
        out = tmp_path / "trace.json"
        assert cli_main([
            "trace", "--out", str(out), "--sites", "6",
        ]) == 0
        payload = json.loads(out.read_text())
        process_names = [
            event["args"]["name"] for event in payload["traceEvents"]
            if event.get("name") == "process_name"
        ]
        assert process_names == [
            "sync", "async", "recovery (fault-free)", "engine",
        ]
        assert any(event["ph"] == "X" for event in payload["traceEvents"])
        captured = capsys.readouterr().out
        assert "span-identical to" in captured
        assert "[engine]" in captured

    def test_trace_chaos_and_fleet_sessions(self, tmp_path, capsys):
        out = tmp_path / "trace.json"
        assert cli_main([
            "trace", "--out", str(out), "--sites", "6",
            "--fault-rate", "0.2", "--fleet", "2",
        ]) == 0
        payload = json.loads(out.read_text())
        process_names = [
            event["args"]["name"] for event in payload["traceEvents"]
            if event.get("name") == "process_name"
        ]
        assert "chaos 20%" in process_names
        assert "fleet" in process_names

    def test_trace_rejects_bad_fault_rate(self, tmp_path, capsys):
        assert cli_main([
            "trace", "--out", str(tmp_path / "t.json"),
            "--fault-rate", "1.5",
        ]) == 2
        assert "must be in [0, 1]" in capsys.readouterr().err


class TestOutputPathValidation:
    """Regression: ``realign --out`` used to fail only *after* the whole
    run when its parent directory was missing or unwritable."""

    def _err(self, capsys) -> str:
        return capsys.readouterr().err

    def test_realign_out_missing_parent_fails_at_parse_time(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            cli_main([
                "realign", "--reference", "/tmp/whatever.fa",
                "--sam", "/tmp/whatever.sam",
                "--out", "/no/such/dir/out.sam",
            ])
        assert excinfo.value.code == 2
        assert "does not exist" in self._err(capsys)

    def test_realign_out_unwritable_parent_fails_at_parse_time(
        self, tmp_path, capsys
    ):
        locked = tmp_path / "locked"
        locked.mkdir()
        locked.chmod(stat.S_IRUSR | stat.S_IXUSR)
        if os.access(locked, os.W_OK):  # e.g. running as root
            pytest.skip("cannot create an unwritable directory here")
        try:
            with pytest.raises(SystemExit) as excinfo:
                cli_main([
                    "realign", "--reference", "/tmp/r.fa",
                    "--sam", "/tmp/r.sam",
                    "--out", str(locked / "out.sam"),
                ])
            assert excinfo.value.code == 2
            assert "not writable" in self._err(capsys)
        finally:
            locked.chmod(stat.S_IRWXU)

    def test_out_pointing_at_directory_rejected(self, tmp_path, capsys):
        with pytest.raises(SystemExit) as excinfo:
            cli_main([
                "trace", "--out", str(tmp_path),
            ])
        assert excinfo.value.code == 2
        assert "is a directory" in self._err(capsys)

    def test_telemetry_flag_path_is_validated_too(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            cli_main([
                "realign", "--reference", "/tmp/r.fa", "--sam", "/tmp/r.sam",
                "--out", "/tmp/out.sam",
                "--telemetry", "/no/such/dir/trace.json",
            ])
        assert excinfo.value.code == 2
        assert "does not exist" in self._err(capsys)

    def test_simulate_out_through_nonexistent_file_rejected(
        self, tmp_path, capsys
    ):
        blocker = tmp_path / "a-file"
        blocker.write_text("not a directory")
        with pytest.raises(SystemExit) as excinfo:
            cli_main([
                "simulate", "--out", str(blocker / "nested" / "dir"),
            ])
        assert excinfo.value.code == 2
        assert "not a directory" in self._err(capsys)

    def test_simulate_out_creates_nested_directories(self, tmp_path):
        target = tmp_path / "deep" / "nested" / "sample"
        assert cli_main([
            "simulate", "--out", str(target), "--length", "4000",
            "--coverage", "8",
        ]) == 0
        assert (target / "reference.fa").exists()

    def test_telemetry_requires_accelerated(self, tmp_path, capsys):
        sample = tmp_path / "sample"
        assert cli_main([
            "simulate", "--out", str(sample), "--length", "4000",
            "--coverage", "8",
        ]) == 0
        assert cli_main([
            "realign", "--reference", str(sample / "reference.fa"),
            "--sam", str(sample / "aligned.sam"),
            "--out", str(sample / "out.sam"),
            "--telemetry", str(tmp_path / "t.json"),
        ]) == 2
        assert "--telemetry requires --accelerated" in self._err(capsys)

    def test_realign_telemetry_writes_trace(self, tmp_path, capsys):
        sample = tmp_path / "sample"
        assert cli_main([
            "simulate", "--out", str(sample), "--length", "5000",
            "--coverage", "10",
        ]) == 0
        trace_path = tmp_path / "realign-trace.json"
        assert cli_main([
            "realign", "--reference", str(sample / "reference.fa"),
            "--sam", str(sample / "aligned.sam"),
            "--out", str(sample / "out.sam"),
            "--accelerated", "--telemetry", str(trace_path),
        ]) == 0
        payload = json.loads(trace_path.read_text())
        assert any(event["ph"] == "X" for event in payload["traceEvents"])
        assert "telemetry:" in capsys.readouterr().out
