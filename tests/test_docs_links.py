"""Dead-link check for the repository's markdown documentation.

Every relative link in ``docs/*.md`` and ``README.md`` must resolve to a
file (or directory) inside the repo. External ``http(s)``/``mailto``
links are skipped -- CI has no network and their liveness is not this
repo's contract -- and pure ``#anchor`` fragments are checked only for
the target file's existence, not the heading.
"""

import re
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
DOC_FILES = sorted(
    [REPO_ROOT / "README.md"] + list((REPO_ROOT / "docs").glob("*.md"))
)

# [text](target) -- ignores images' leading "!" (same target rules) and
# skips fenced code blocks below.
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")


def _links(path: Path):
    in_fence = False
    for lineno, line in enumerate(path.read_text().splitlines(), start=1):
        if line.lstrip().startswith("```"):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        for match in LINK_RE.finditer(line):
            yield lineno, match.group(1)


def test_doc_files_exist():
    assert (REPO_ROOT / "README.md").exists()
    assert len(DOC_FILES) >= 4, "docs/*.md shrank unexpectedly"


@pytest.mark.parametrize("doc", DOC_FILES, ids=lambda p: p.name)
def test_intra_repo_links_resolve(doc):
    dead = []
    for lineno, target in _links(doc):
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        path_part = target.split("#", 1)[0]
        if not path_part:  # pure #anchor into the same file
            continue
        resolved = (doc.parent / path_part).resolve()
        if not resolved.exists():
            dead.append(f"{doc.relative_to(REPO_ROOT)}:{lineno} -> {target}")
    assert not dead, "dead intra-repo links:\n" + "\n".join(dead)
