"""Tests for host data-plane fault tolerance (resilience.workers).

The contract under test mirrors the accelerator plane's: under any
seeded schedule of worker faults -- SIGKILL, hang, delay, error -- the
engines complete without hanging and their output is byte-identical to
a fault-free run, with every recovery action visible in telemetry.
Specific regressions pinned here: a worker SIGKILLed mid-chunk at
``queue_depth=1`` used to block the in-flight window forever; a
``BrokenProcessPool`` used to abort a ``--stream`` run; a crashed
worker's shared-memory arena used to leak silently.
"""

import gc
import io
import os
import time

import numpy as np
import pytest

from repro.engine import Engine, EngineConfig, StreamingEngine
from repro.engine.shmem import (
    HAVE_SHARED_MEMORY,
    drain_lifecycle_counters,
    pack_chunk,
)
from repro.resilience.workers import (
    ForcedWorkerFault,
    RecoveryEvent,
    WorkerFaultKind,
    WorkerFaultPlan,
    WorkerRecovery,
    record_recovery_spans,
)
from repro.telemetry import CAT_RECOVERY, Telemetry
from tests.test_stream import _sites

pytestmark = pytest.mark.filterwarnings(
    "ignore::pytest.PytestUnraisableExceptionWarning"
)


def _serial_results(sites):
    return Engine(EngineConfig(workers=1, batch=2)).run_sites(sites)


def _assert_identical(got, want):
    assert len(got) == len(want)
    for a, b in zip(got, want):
        assert a.same_outputs(b)


class TestWorkerFaultPlan:
    def test_draws_are_order_independent(self):
        plan = WorkerFaultPlan.chaos(seed=5, rate=0.6)
        keys = [(chunk, lo, attempt) for chunk in range(4)
                for lo in (0, 2) for attempt in range(3)]
        forward = {key: plan.chunk_outcome(*key) for key in keys}
        backward = {key: plan.chunk_outcome(*key)
                    for key in reversed(keys)}
        assert forward == backward
        # And replays identically from a fresh plan with the same seed.
        replay = WorkerFaultPlan.chaos(seed=5, rate=0.6)
        assert {k: replay.chunk_outcome(*k) for k in keys} == forward

    def test_none_plan_never_faults(self):
        plan = WorkerFaultPlan.none()
        assert plan.is_fault_free
        assert all(plan.chunk_outcome(c, 0, a) is None
                   for c in range(8) for a in range(4))

    def test_chaos_rate_splits_over_kinds(self):
        plan = WorkerFaultPlan.chaos(seed=1, rate=1.0)
        outcomes = [plan.chunk_outcome(chunk, 0, 0) for chunk in range(64)]
        kinds = {event.kind for event in outcomes if event is not None}
        # rate=1.0 means every dispatch faults, across all four kinds.
        assert all(event is not None for event in outcomes)
        assert kinds == set(WorkerFaultKind)

    def test_scripted_faults_strike_exactly_once(self):
        plan = WorkerFaultPlan.scripted(
            ForcedWorkerFault(chunk=2, attempt=1,
                              kind=WorkerFaultKind.ERROR),
        )
        hit = plan.chunk_outcome(2, 0, 1)
        assert hit is not None and hit.kind is WorkerFaultKind.ERROR
        assert plan.chunk_outcome(2, 0, 0) is None
        assert plan.chunk_outcome(2, 0, 2) is None
        assert plan.chunk_outcome(1, 0, 1) is None
        assert plan.chunk_outcome(2, 1, 1) is None  # bisected half differs

    def test_magnitudes_are_deterministic_and_bounded(self):
        plan = WorkerFaultPlan(seed=9, delay_rate=1.0,
                               delay_range=(0.01, 0.02))
        events = [plan.chunk_outcome(chunk, 0, 0) for chunk in range(16)]
        assert all(e.kind is WorkerFaultKind.DELAY for e in events)
        assert all(0.01 <= e.magnitude <= 0.02 for e in events)
        replay = WorkerFaultPlan(seed=9, delay_rate=1.0,
                                 delay_range=(0.01, 0.02))
        assert [replay.chunk_outcome(c, 0, 0).magnitude
                for c in range(16)] == [e.magnitude for e in events]

    def test_validation(self):
        with pytest.raises(ValueError):
            WorkerFaultPlan(kill_rate=1.5)
        with pytest.raises(ValueError):
            WorkerFaultPlan(kill_rate=0.6, error_rate=0.6)
        with pytest.raises(ValueError):
            WorkerFaultPlan(delay_range=(0.5, 0.1))
        with pytest.raises(ValueError):
            WorkerFaultPlan(hang_seconds=0.0)
        with pytest.raises(ValueError):
            WorkerFaultPlan.chaos(seed=0, rate=2.0)


class TestWorkerRecoveryConfig:
    def test_from_env_returns_none_without_relevant_vars(self):
        assert WorkerRecovery.from_env(env={}) is None
        assert WorkerRecovery.from_env(env={"REPRO_CHAOS_SEED": "7"}) is None

    def test_from_env_builds_chaos_plan(self):
        recovery = WorkerRecovery.from_env(env={
            "REPRO_WORKER_FAULT_RATE": "0.2",
            "REPRO_CHAOS_SEED": "11",
            "REPRO_CHUNK_DEADLINE": "4.5",
            "REPRO_WORKER_HANG_SECONDS": "2.0",
        })
        assert recovery is not None
        assert recovery.plan.seed == 11
        assert recovery.plan.worker_fault_rate == pytest.approx(0.2)
        assert recovery.plan.hang_seconds == 2.0
        assert recovery.chunk_deadline == 4.5

    def test_from_env_deadline_alone_enables_recovery(self):
        recovery = WorkerRecovery.from_env(
            env={"REPRO_CHUNK_DEADLINE": "9"})
        assert recovery is not None
        assert recovery.plan.is_fault_free
        assert recovery.chunk_deadline == 9.0

    def test_validation(self):
        with pytest.raises(ValueError):
            WorkerRecovery(chunk_deadline=0.0)
        with pytest.raises(ValueError):
            WorkerRecovery(cycle_seconds=0.0)
        with pytest.raises(ValueError):
            WorkerRecovery(watchdog_tick=-1.0)

    def test_backoff_seconds_scales_cycle_schedule(self):
        policy = WorkerRecovery().retry
        plan = WorkerFaultPlan.none()
        first = policy.backoff_seconds(0, plan, target=3)
        assert 0.0 < first < 0.001  # ~256 us at the default scale
        assert policy.backoff_seconds(0, plan, target=3,
                                      cycle_seconds=2e-6) == first * 2
        with pytest.raises(ValueError):
            policy.backoff_seconds(0, plan, target=3, cycle_seconds=0.0)


class TestRecoverySpans:
    def test_events_become_recovery_spans_and_counter(self):
        telemetry = Telemetry()
        events = [
            RecoveryEvent(name="deadline chunk 3", start=10.0, end=10.5,
                          chunk=3, attempt=0),
            RecoveryEvent(name="respawn pool", start=10.5, end=10.6),
        ]
        record_recovery_spans(telemetry, events, origin=10.0)
        spans = telemetry.spans_in(CAT_RECOVERY)
        assert [span.name for span in spans] == ["deadline chunk 3",
                                                 "respawn pool"]
        assert all(span.track == "worker recovery" for span in spans)
        assert spans[0].start == 0.0 and spans[0].end == 0.5
        assert telemetry.counters.flat()["worker.recovery_spans"] == 2

    def test_no_telemetry_or_events_is_a_noop(self):
        record_recovery_spans(None, [RecoveryEvent("x", 0.0, 1.0)])
        telemetry = Telemetry()
        record_recovery_spans(telemetry, [])
        assert telemetry.spans == []


def _recovery(*faults, deadline=8.0, **plan_overrides):
    return WorkerRecovery(
        plan=WorkerFaultPlan.scripted(*faults, **plan_overrides),
        chunk_deadline=deadline,
    )


class TestEngineRecovery:
    def test_fault_free_recovery_is_byte_identical(self):
        sites = _sites(8, seed=23)
        want = _serial_results(sites)
        with Engine(EngineConfig(workers=2, batch=2),
                    recovery=_recovery()) as engine:
            _assert_identical(engine.run_sites(sites), want)
            assert engine.recovery_counters == {}

    def test_sigkill_mid_chunk_respawns_and_completes(self):
        sites = _sites(8, seed=31)
        want = _serial_results(sites)
        recovery = _recovery(
            ForcedWorkerFault(chunk=1, attempt=0,
                              kind=WorkerFaultKind.KILL),
        )
        telemetry = Telemetry()
        with Engine(EngineConfig(workers=2, batch=2),
                    recovery=recovery) as engine:
            _assert_identical(engine.run_sites(sites, telemetry=telemetry),
                              want)
            counters = engine.recovery_counters
        assert counters["worker.injected.worker-kill"] == 1
        assert counters["worker.pool_respawns"] >= 1
        flat = telemetry.counters.flat()
        assert flat["worker.pool_respawns"] >= 1
        assert telemetry.spans_in(CAT_RECOVERY)

    def test_injected_error_is_retried(self):
        sites = _sites(6, seed=37)
        want = _serial_results(sites)
        recovery = _recovery(
            ForcedWorkerFault(chunk=0, attempt=0,
                              kind=WorkerFaultKind.ERROR),
        )
        with Engine(EngineConfig(workers=2, batch=2),
                    recovery=recovery) as engine:
            _assert_identical(engine.run_sites(sites), want)
            counters = engine.recovery_counters
        assert counters["worker.errors"] == 1
        assert counters["worker.retries"] >= 1

    def test_hang_expires_deadline_and_recovers(self):
        sites = _sites(6, seed=41)
        want = _serial_results(sites)
        recovery = WorkerRecovery(
            plan=WorkerFaultPlan.scripted(
                ForcedWorkerFault(chunk=1, attempt=0,
                                  kind=WorkerFaultKind.HANG),
                hang_seconds=2.0,
            ),
            chunk_deadline=0.5,
        )
        start = time.perf_counter()
        with Engine(EngineConfig(workers=2, batch=2),
                    recovery=recovery) as engine:
            _assert_identical(engine.run_sites(sites), want)
            counters = engine.recovery_counters
        assert counters["worker.deadline_expired"] >= 1
        # The hang is 2 s; the run must finish well under the hang-free
        # serial bound plus one deadline + retry, not wait it out fully.
        assert time.perf_counter() - start < 30.0

    def test_poison_chunk_bisects_then_quarantines_inline(self):
        sites = _sites(4, seed=43)
        want = _serial_results(sites)
        attempts = WorkerRecovery().retry.max_attempts
        # Error every attempt at offsets 0 and 1 of chunk 0: the whole
        # chunk (lo=0) exhausts and bisects; each 1-site half (lo=0 and
        # lo=1) exhausts again and must quarantine inline.
        faults = [
            ForcedWorkerFault(chunk=0, lo=lo, attempt=attempt,
                              kind=WorkerFaultKind.ERROR)
            for lo in (0, 1)
            for attempt in range(attempts)
        ]
        recovery = _recovery(*faults, deadline=8.0)
        with Engine(EngineConfig(workers=2, batch=2),
                    recovery=recovery) as engine:
            _assert_identical(engine.run_sites(sites), want)
            counters = engine.recovery_counters
        assert counters["worker.bisects"] >= 1
        assert counters["worker.quarantined_sites"] == 2
        # lo=0 faults strike the whole chunk AND its first half; lo=1
        # faults strike the second half: 3 exhausted attempt budgets.
        assert counters["worker.errors"] == 3 * attempts

    def test_bisect_isolates_poison_to_one_site(self):
        sites = _sites(4, seed=47)
        want = _serial_results(sites)
        attempts = WorkerRecovery().retry.max_attempts
        # Fault every attempt at (chunk 1, lo=0). The whole chunk
        # exhausts and bisects; the lo=0 half inherits the same fault
        # key and quarantines, but the lo=1 half -- never faulted --
        # completes in the pool: exactly one site leaves the fast path.
        faults = [
            ForcedWorkerFault(chunk=1, attempt=attempt,
                              kind=WorkerFaultKind.ERROR)
            for attempt in range(attempts)
        ]
        with Engine(EngineConfig(workers=2, batch=2),
                    recovery=_recovery(*faults)) as engine:
            _assert_identical(engine.run_sites(sites), want)
            counters = engine.recovery_counters
        assert counters["worker.bisects"] == 1
        assert counters["worker.quarantined_sites"] == 1
        assert counters["worker.errors"] == 2 * attempts


class TestStreamingRecovery:
    def test_sigkill_at_queue_depth_one_completes(self):
        # The original hang: a killed worker lost its chunk and the
        # depth-1 window never freed. The watchdog must finish the run.
        sites = _sites(8, seed=53)
        want = _serial_results(sites)
        recovery = _recovery(
            ForcedWorkerFault(chunk=1, attempt=0,
                              kind=WorkerFaultKind.KILL),
        )
        telemetry = Telemetry()
        with StreamingEngine(EngineConfig(workers=2, batch=2),
                             queue_depth=1, recovery=recovery) as stream:
            got = list(stream.stream_sites(sites, telemetry=telemetry))
            counters = stream.recovery_counters
            stats = dict(stream.stream_stats)
        _assert_identical(got, want)
        assert counters["worker.injected.worker-kill"] == 1
        assert counters["worker.pool_respawns"] >= 1
        assert stats["stream.arena_recovered"] >= 1
        assert telemetry.spans_in(CAT_RECOVERY)

    def test_crashed_worker_arena_is_unlinked(self):
        if not HAVE_SHARED_MEMORY:
            pytest.skip("no multiprocessing.shared_memory")
        shm_dir = "/dev/shm"
        if not os.path.isdir(shm_dir):
            pytest.skip("no /dev/shm to observe")
        sites = _sites(6, seed=59)
        recovery = _recovery(
            ForcedWorkerFault(chunk=0, attempt=0,
                              kind=WorkerFaultKind.KILL),
        )
        before = set(os.listdir(shm_dir))
        with StreamingEngine(EngineConfig(workers=2, batch=2),
                             queue_depth=1, use_shmem=True,
                             recovery=recovery) as stream:
            stream.run_sites(sites)
            assert stream.stream_stats["stream.arena_recovered"] >= 1
        gc.collect()
        leaked = set(os.listdir(shm_dir)) - before
        assert not leaked, f"arenas leaked after worker crash: {leaked}"

    def test_streamed_chaos_matches_barrier_and_serial_sam(self):
        # The acceptance run: one fixed seed, >= 3 distinct fault kinds
        # including SIGKILL of a live worker mid-chunk, on both engines;
        # SAM output byte-identical to fault-free on each.
        from repro.genomics.samlite import write_sam
        from repro.genomics.simulate import SimulationProfile, simulate_sample
        from repro.realign.realigner import IndelRealigner

        sample = simulate_sample(
            {"chr22": 9_000},
            profile=SimulationProfile(coverage=16.0, indel_rate=1.5e-3),
            seed=7,
        )

        def sam_with(engine):
            reads, _report = IndelRealigner(
                sample.reference, engine=engine
            ).realign(sample.reads)
            sink = io.StringIO()
            write_sam(reads, sink, sample.reference)
            return sink.getvalue()

        want = sam_with(None)
        faults = (
            ForcedWorkerFault(chunk=1, attempt=0,
                              kind=WorkerFaultKind.KILL),
            ForcedWorkerFault(chunk=0, attempt=0,
                              kind=WorkerFaultKind.ERROR),
            ForcedWorkerFault(chunk=2, attempt=0,
                              kind=WorkerFaultKind.DELAY),
        )
        config = EngineConfig(workers=2, batch=2)
        telemetry = Telemetry()
        with Engine(config, recovery=_recovery(*faults)) as engine:
            barrier_sam = sam_with(engine)
            barrier_counters = dict(engine.recovery_counters)
        with StreamingEngine(config, queue_depth=1,
                             recovery=_recovery(*faults)) as stream:
            reads, _ = IndelRealigner(sample.reference,
                                      engine=stream).realign(sample.reads)
            sink = io.StringIO()
            write_sam(reads, sink, sample.reference)
            stream_sam = sink.getvalue()
            stream_counters = dict(stream.recovery_counters)
        assert barrier_sam == want
        assert stream_sam == want
        injected = {name for name in barrier_counters
                    if name.startswith("worker.injected.")}
        assert injected == {
            "worker.injected.worker-kill",
            "worker.injected.worker-error",
            "worker.injected.worker-delay",
        }
        assert barrier_counters["worker.pool_respawns"] >= 1
        assert stream_counters["worker.pool_respawns"] >= 1

    def test_recovery_engine_works_across_runs(self):
        # The resilient pool persists like the plain pool; state from an
        # earlier run (same chunk ids!) must not contaminate the next.
        sites_a = _sites(6, seed=61)
        sites_b = _sites(6, seed=67)
        recovery = _recovery(
            ForcedWorkerFault(chunk=0, attempt=0,
                              kind=WorkerFaultKind.ERROR),
        )
        with StreamingEngine(EngineConfig(workers=2, batch=2),
                             queue_depth=1, recovery=recovery) as stream:
            _assert_identical(stream.run_sites(sites_a),
                              _serial_results(sites_a))
            _assert_identical(stream.run_sites(sites_b),
                              _serial_results(sites_b))


class TestEnvDrivenRecovery:
    def test_engine_picks_up_recovery_from_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKER_FAULT_RATE", "0.0")
        monkeypatch.setenv("REPRO_CHUNK_DEADLINE", "20")
        engine = Engine(EngineConfig(workers=2, batch=2))
        try:
            assert engine.recovery is not None
            assert engine.recovery.chunk_deadline == 20.0
        finally:
            engine.close()

    def test_engine_defaults_to_no_recovery(self, monkeypatch):
        monkeypatch.delenv("REPRO_WORKER_FAULT_RATE", raising=False)
        monkeypatch.delenv("REPRO_CHUNK_DEADLINE", raising=False)
        engine = Engine(EngineConfig(workers=2, batch=2))
        try:
            assert engine.recovery is None
        finally:
            engine.close()


class TestShmemLifecycle:
    def test_gc_reclaimed_arena_is_counted(self):
        if not HAVE_SHARED_MEMORY:
            pytest.skip("no multiprocessing.shared_memory")
        drain_lifecycle_counters()
        _descriptor, handle = pack_chunk(0, _sites(1, seed=71),
                                         use_shmem=True)
        del handle
        gc.collect()
        counters = drain_lifecycle_counters()
        assert counters.get("shmem.arena_gc_reclaimed") == 1

    def test_release_after_external_unlink_is_counted(self):
        if not HAVE_SHARED_MEMORY:
            pytest.skip("no multiprocessing.shared_memory")
        drain_lifecycle_counters()
        _descriptor, handle = pack_chunk(0, _sites(1, seed=73),
                                         use_shmem=True)
        handle._shm.unlink()  # someone else (a tracker) got there first
        handle.release()
        counters = drain_lifecycle_counters()
        assert counters.get("shmem.unlink_missing") == 1

    def test_clean_release_counts_nothing(self):
        drain_lifecycle_counters()
        _descriptor, handle = pack_chunk(0, _sites(1, seed=79),
                                         use_shmem=True)
        handle.release()
        del handle
        gc.collect()
        assert drain_lifecycle_counters() == {}


class TestPipelineShutdown:
    def _sample(self):
        from repro.genomics.simulate import SimulationProfile, simulate_sample

        return simulate_sample(
            {"1": 9_000},
            profile=SimulationProfile(coverage=16.0, indel_rate=1e-3),
            seed=17,
        )

    @staticmethod
    def _refine_threads():
        import threading

        return [t for t in threading.enumerate()
                if t.name.startswith("refine-")]

    def test_keyboard_interrupt_joins_all_stage_threads(self, monkeypatch):
        from repro.refinement import pipeline as pipeline_module
        from repro.refinement.pipeline import StreamingRefinementPipeline

        sample = self._sample()

        def explode(*_args, **_kwargs):
            raise KeyboardInterrupt()

        # The drain loop (main thread) is where Ctrl-C lands; its first
        # pileup merge raising must unwind every stage thread.
        monkeypatch.setattr(pipeline_module, "merge_columns", explode)
        pipeline = StreamingRefinementPipeline(sample.reference,
                                               queue_depth=1)
        with pytest.raises(KeyboardInterrupt):
            pipeline.run(sample.reads)
        assert self._refine_threads() == []

    def test_stage_error_joins_all_stage_threads(self, monkeypatch):
        from repro.refinement import pipeline as pipeline_module
        from repro.refinement.pipeline import StreamingRefinementPipeline

        sample = self._sample()

        def explode(*_args, **_kwargs):
            raise RuntimeError("injected stage failure")

        monkeypatch.setattr(pipeline_module, "mark_duplicates", explode)
        pipeline = StreamingRefinementPipeline(sample.reference,
                                               queue_depth=1)
        with pytest.raises(RuntimeError, match="injected stage failure"):
            pipeline.run(sample.reads)
        assert self._refine_threads() == []
