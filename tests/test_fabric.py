"""Unit tests for the memory-fabric contention simulation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hw.fabric import (
    CHANNELS_PER_UNIT,
    DDR_BEATS_PER_CYCLE,
    FabricResult,
    UnitFillRequest,
    fill_stretch_for_sites,
    simulate_fill,
)
from repro.workloads.generator import BENCH_PROFILE, synthesize_site


def request(*beats):
    return UnitFillRequest(channel_beats=tuple(beats))


class TestRequest:
    def test_channel_count_enforced(self):
        with pytest.raises(ValueError):
            UnitFillRequest(channel_beats=(1, 2, 3))
        with pytest.raises(ValueError):
            request(1, 2, 3, 4, -1)

    def test_for_site_matches_buffer_arithmetic(self):
        site = synthesize_site(np.random.default_rng(1), BENCH_PROFILE)
        req = UnitFillRequest.for_site(site)
        cons_beats = sum(-(-len(c) // 32) for c in site.consensuses)
        assert req.channel_beats[0] == cons_beats
        assert req.channel_beats[1] == req.channel_beats[2]
        assert req.total_beats > 0


class TestSimulation:
    def test_single_unit_uncontended(self):
        # One unit, DDR wider than its demand: one beat per cycle
        # (the 5:1 arbiter serialises the unit's own channels).
        result = simulate_fill([request(4, 4, 4, 1, 1)])
        assert result.beats_served == 14
        assert result.cycles == 14
        assert result.unit_stretch(0, 14) == 1.0

    def test_ddr_saturation(self):
        # 8 units demanding 10 beats each against 4 beats/cycle:
        # exactly 80 / 4 = 20 cycles if the fabric is work-conserving.
        requests = [request(2, 2, 2, 2, 2) for _ in range(8)]
        result = simulate_fill(requests, ddr_beats_per_cycle=4)
        assert result.beats_served == 80
        assert result.cycles == 20
        assert result.throughput_beats_per_cycle == 4.0

    def test_fairness_across_units(self):
        requests = [request(5, 5, 5, 5, 5) for _ in range(4)]
        result = simulate_fill(requests, ddr_beats_per_cycle=2)
        # Equal demands finish within one round of each other.
        assert max(result.per_unit_finish) - min(result.per_unit_finish) <= 2

    def test_zero_beats(self):
        result = simulate_fill([request(0, 0, 0, 0, 0)])
        assert result.cycles == 0
        assert result.throughput_beats_per_cycle == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            simulate_fill([], ddr_beats_per_cycle=0)

    @given(st.lists(
        st.tuples(*[st.integers(0, 12)] * CHANNELS_PER_UNIT),
        min_size=1, max_size=8,
    ))
    @settings(max_examples=30, deadline=None)
    def test_work_conservation(self, beat_tuples):
        requests = [UnitFillRequest(channel_beats=t) for t in beat_tuples]
        total = sum(r.total_beats for r in requests)
        result = simulate_fill(requests, ddr_beats_per_cycle=3)
        assert result.beats_served == total
        if total:
            # Work conserving: no cycle is wasted while beats remain,
            # subject to the one-nomination-per-unit constraint.
            lower = -(-total // 3)
            upper = max(r.total_beats for r in requests) * len(requests)
            assert lower <= result.cycles <= max(upper, lower)


class TestDesignAssumption:
    def test_32_unit_fill_stretch_is_modest(self):
        """The analytic model treats fills as uncontended; the stepped
        fabric shows 32 concurrent fills stretch at most ~8x (32 units
        on a 4-beat DDR), and fills are a tiny slice of compute."""
        rng = np.random.default_rng(4)
        sites = [synthesize_site(rng, BENCH_PROFILE) for _ in range(32)]
        stretch = fill_stretch_for_sites(sites, DDR_BEATS_PER_CYCLE)
        assert 1.0 <= stretch <= 32 / DDR_BEATS_PER_CYCLE + 1.0
