"""Unit tests for repro.genomics.quality."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.genomics.quality import (
    ILLUMINA_MAX_PHRED,
    MAX_PHRED,
    QualityError,
    clamp_phred,
    error_prob_to_phred,
    phred_from_ascii,
    phred_to_ascii,
    phred_to_error_prob,
)


class TestAsciiCoding:
    def test_known_values(self):
        # '!' is Q0, 'I' is Q40 in Sanger Phred+33.
        assert phred_to_ascii([0, 40]) == "!I"
        assert phred_from_ascii("!I").tolist() == [0, 40]

    def test_rejects_out_of_range_score(self):
        with pytest.raises(QualityError):
            phred_to_ascii([MAX_PHRED + 1])
        with pytest.raises(QualityError):
            phred_to_ascii([-1])

    def test_rejects_out_of_range_character(self):
        with pytest.raises(QualityError):
            phred_from_ascii(" ")  # below '!'

    @given(st.lists(st.integers(0, MAX_PHRED), max_size=100))
    def test_roundtrip(self, scores):
        decoded = phred_from_ascii(phred_to_ascii(scores))
        assert decoded.tolist() == scores


class TestProbabilities:
    def test_q10_is_ten_percent(self):
        assert phred_to_error_prob(10) == pytest.approx(0.1)

    def test_q60_is_one_in_a_million(self):
        assert phred_to_error_prob(60) == pytest.approx(1e-6)

    def test_inverse(self):
        assert error_prob_to_phred(0.001) == pytest.approx(30.0)

    def test_negative_score_rejected(self):
        with pytest.raises(QualityError):
            phred_to_error_prob(-1)

    def test_bad_probability_rejected(self):
        with pytest.raises(QualityError):
            error_prob_to_phred(0.0)
        with pytest.raises(QualityError):
            error_prob_to_phred(1.5)

    @given(st.integers(0, MAX_PHRED))
    def test_prob_phred_roundtrip(self, score):
        prob = phred_to_error_prob(score)
        assert error_prob_to_phred(prob) == pytest.approx(score, abs=1e-9)


class TestClamp:
    def test_clamps_to_illumina_ceiling(self):
        out = clamp_phred(np.array([-5, 0, 41, 99]))
        assert out.tolist() == [0, 0, 41, ILLUMINA_MAX_PHRED]
        assert out.dtype == np.uint8

    def test_custom_ceiling(self):
        assert clamp_phred(np.array([50]), ceiling=45).tolist() == [45]
