"""Integration tests for the software INDEL realigner."""

import numpy as np
import pytest

from repro.align.pileup import pileup
from repro.genomics.cigar import Cigar
from repro.genomics.read import Read
from repro.genomics.reference import Contig, ReferenceGenome
from repro.genomics.sequence import random_bases
from repro.realign.realigner import IndelRealigner


def full_quals(n):
    return np.full(n, 30, np.uint8)


@pytest.fixture
def deletion_scenario():
    """A 5-base deletion at position 1500 with mixed alignments."""
    rng = np.random.default_rng(5)
    ref_seq = random_bases(3_000, rng)
    reference = ReferenceGenome([Contig("c", ref_seq)])
    donor = ref_seq[:1500] + ref_seq[1505:]
    reads = []
    L = 100
    for i, start in enumerate(range(1405, 1500, 7)):
        seq = donor[start : start + L]
        k = 1500 - start
        if i % 3 == 0:
            cigar = Cigar.parse(f"{k}M5D{L - k}M")
            reads.append(Read(f"ok{i}", "c", start, seq, full_quals(L), cigar))
        else:
            reads.append(Read(f"bad{i}", "c", start, seq, full_quals(L),
                              Cigar.parse(f"{L}M")))
    for i, start in enumerate(range(1300, 1700, 11)):
        seq = ref_seq[start : start + L]
        reads.append(Read(f"ref{i}", "c", start, seq, full_quals(L),
                          Cigar.parse(f"{L}M")))
    return reference, ref_seq, reads


class TestDeletionRealignment:
    def test_misaligned_reads_get_exact_placement(self, deletion_scenario):
        reference, ref_seq, reads = deletion_scenario
        updated, report = IndelRealigner(reference).realign(reads)
        assert report.reads_realigned > 0
        for orig, new in zip(reads, updated):
            if orig.name.startswith("bad"):
                k = 1500 - orig.pos
                assert new.pos == orig.pos
                assert str(new.cigar) == f"{k}M5D{100 - k}M"

    def test_no_residual_mismatches(self, deletion_scenario):
        reference, ref_seq, reads = deletion_scenario
        updated, _ = IndelRealigner(reference).realign(reads)
        columns = pileup(updated)
        for (chrom, pos), column in columns.items():
            assert all(base == ref_seq[pos] for base in column.bases), \
                f"residual mismatch at {pos}"

    def test_clean_reads_untouched(self, deletion_scenario):
        reference, _ref_seq, reads = deletion_scenario
        updated, _ = IndelRealigner(reference).realign(reads)
        for orig, new in zip(reads, updated):
            if orig.name.startswith("ref"):
                assert new.pos == orig.pos
                assert str(new.cigar) == str(orig.cigar)

    def test_report_statistics(self, deletion_scenario):
        reference, _ref_seq, reads = deletion_scenario
        _, report = IndelRealigner(reference).realign(reads)
        assert report.targets_identified >= 1
        assert report.sites_built >= 1
        assert report.reads_examined == len(reads)
        assert report.unpruned_comparisons > 0
        assert len(report.site_shapes) == report.sites_built
        shape = report.site_shapes[0]
        assert shape.unpruned_comparisons > 0
        assert shape.num_reads > 0


class TestInsertionRealignment:
    def test_insertion_placement(self):
        rng = np.random.default_rng(6)
        ref_seq = random_bases(3_000, rng)
        reference = ReferenceGenome([Contig("c", ref_seq)])
        ins = "TTTTT"
        donor = ref_seq[:1500] + ins + ref_seq[1500:]
        reads = []
        L = 100
        for i, start in enumerate(range(1406, 1495, 7)):
            seq = donor[start : start + L]
            k = 1500 - start
            if i % 3 == 0:
                cigar = Cigar.parse(f"{k}M5I{L - k - 5}M")
                reads.append(Read(f"ok{i}", "c", start, seq, full_quals(L),
                                  cigar))
            else:
                reads.append(Read(f"bad{i}", "c", start, seq, full_quals(L),
                                  Cigar.parse(f"{L}M")))
        updated, report = IndelRealigner(reference).realign(reads)
        assert report.reads_realigned > 0
        for orig, new in zip(reads, updated):
            if orig.name.startswith("bad"):
                k = 1500 - orig.pos
                assert new.pos == orig.pos
                assert str(new.cigar) == f"{k}M5I{95 - k}M"


class TestVectorizedParity:
    def test_scalar_kernel_gives_identical_reads(self, deletion_scenario):
        reference, _ref_seq, reads = deletion_scenario
        fast, _ = IndelRealigner(reference, kernel="vector").realign(reads)
        slow, _ = IndelRealigner(reference, kernel="scalar").realign(reads)
        for a, b in zip(fast, slow):
            assert a.pos == b.pos and str(a.cigar) == str(b.cigar)

    def test_deprecated_flag_still_selects_the_same_kernels(
        self, deletion_scenario
    ):
        """vectorized= is deprecated-but-working: it warns and maps onto
        the named kernels."""
        reference, _ref_seq, reads = deletion_scenario
        with pytest.warns(DeprecationWarning, match="vectorized"):
            fast, _ = IndelRealigner(reference,
                                     vectorized=True).realign(reads)
        with pytest.warns(DeprecationWarning, match="vectorized"):
            slow, _ = IndelRealigner(reference,
                                     vectorized=False).realign(reads)
        for a, b in zip(fast, slow):
            assert a.pos == b.pos and str(a.cigar) == str(b.cigar)
