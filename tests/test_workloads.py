"""Unit tests for the workload census and generators."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.accelerator import IRUnit, UnitConfig
from repro.workloads.chromosomes import (
    ANCHOR_CH2_TARGETS,
    ANCHOR_CH21_TARGETS,
    CHROMOSOME_CENSUS,
    GRCH37_LENGTHS,
    census_for,
    total_targets,
)
from repro.workloads.generator import (
    BENCH_PROFILE,
    REAL_PROFILE,
    SiteProfile,
    chromosome_workload,
    expected_comparisons_per_site,
    synthesize_site,
)
from repro.genomics.simulate import SimulationProfile
from repro.workloads.adversarial import (
    TRUSEQ_ADAPTER,
    AdversarialProfile,
    adversarial_sample,
)
from repro.workloads.cohort import (
    CohortProfile,
    indel_support,
    simulate_cohort,
)
from repro.workloads.toy import (
    NUM_CONSENSUSES,
    NUM_READS,
    NUM_TARGETS,
    figure7_toy_targets,
)


class TestCensus:
    def test_covers_22_chromosomes(self):
        assert len(CHROMOSOME_CENSUS) == 22
        assert {c.name for c in CHROMOSOME_CENSUS} == \
            {str(i) for i in range(1, 23)}

    def test_paper_anchors(self):
        assert census_for("21").ir_targets == ANCHOR_CH21_TARGETS
        assert census_for("2").ir_targets == ANCHOR_CH2_TARGETS

    def test_targets_increase_with_length(self):
        ordered = sorted(CHROMOSOME_CENSUS, key=lambda c: c.length_bp)
        counts = [c.ir_targets for c in ordered]
        assert counts == sorted(counts)
        assert all(count > 0 for count in counts)

    def test_complexity_band(self):
        for census in CHROMOSOME_CENSUS:
            assert 0.82 <= census.complexity < 1.24

    def test_reads_proportional_to_length(self):
        total_reads = sum(c.reads for c in CHROMOSOME_CENSUS)
        assert total_reads == pytest.approx(763_275_063, rel=1e-6)

    def test_total_and_lookup(self):
        assert total_targets() == sum(c.ir_targets for c in CHROMOSOME_CENSUS)
        with pytest.raises(KeyError):
            census_for("X")

    def test_lengths_are_grch37(self):
        assert GRCH37_LENGTHS["1"] == 249_250_621
        assert GRCH37_LENGTHS["21"] == 48_129_895


class TestGenerator:
    @given(st.integers(0, 200), st.floats(0.5, 1.5))
    @settings(max_examples=30, deadline=None)
    def test_sites_respect_paper_limits(self, seed, complexity):
        rng = np.random.default_rng(seed)
        site = synthesize_site(rng, BENCH_PROFILE, complexity=complexity)
        limits = BENCH_PROFILE.limits
        assert 2 <= site.num_consensuses <= limits.max_consensuses
        assert 2 <= site.num_reads <= limits.max_reads
        assert all(len(c) <= limits.max_consensus_length
                   for c in site.consensuses)
        assert all(len(r) <= limits.max_read_length for r in site.reads)
        max_read = max(len(r) for r in site.reads)
        assert all(len(c) >= max_read for c in site.consensuses)

    def test_deterministic_by_seed(self):
        a = synthesize_site(np.random.default_rng(3))
        b = synthesize_site(np.random.default_rng(3))
        assert a.consensuses == b.consensuses
        assert a.reads == b.reads

    def test_chromosome_workload_scaling(self):
        census = census_for("21")
        sites = chromosome_workload(census, 10 / census.ir_targets, seed=1)
        assert len(sites) == 10
        assert all(site.chrom == "21" for site in sites)
        with pytest.raises(ValueError):
            chromosome_workload(census, 0)

    def test_workload_always_at_least_one_site(self):
        census = census_for("21")
        assert len(chromosome_workload(census, 1e-9)) == 1

    def test_expected_comparisons_positive_and_monotone(self):
        base = expected_comparisons_per_site(REAL_PROFILE, 1.0)
        harder = expected_comparisons_per_site(REAL_PROFILE, 1.2)
        assert 0 < base < harder

    def test_profile_validation(self):
        with pytest.raises(ValueError):
            SiteProfile("bad", 1.0, 10.0, (10, 20), 100.0)
        with pytest.raises(ValueError):
            SiteProfile("bad", 4.0, 10.0, (20, 10), 100.0)


class TestToyWorkload:
    def test_figure7_geometry(self):
        sites = figure7_toy_targets()
        assert len(sites) == NUM_TARGETS == 8
        for site in sites:
            assert site.num_consensuses == NUM_CONSENSUSES == 2
            assert site.num_reads == NUM_READS == 8
            assert len(site.reference) == len(sites[0].reference)

    def test_pruning_variance_near_paper(self):
        sites = figure7_toy_targets()
        unit = IRUnit(UnitConfig(lanes=1))
        cycles = [unit.run_site(site).cycles.total for site in sites]
        ratio = cycles[3] / cycles[1]
        # Paper: "about 8 times"; same-sized targets throughout.
        assert 6.0 <= ratio <= 10.0
        assert max(cycles) == cycles[3]


class TestCohortWorkload:
    CONTIGS = {"chrT": 4_000}
    PROFILE = SimulationProfile(coverage=10.0, indel_rate=2e-3)

    def _cohort(self, seed=5, **kwargs):
        return simulate_cohort(
            self.CONTIGS,
            cohort_profile=CohortProfile(**kwargs),
            sim_profile=self.PROFILE,
            seed=seed,
        )

    def test_samples_share_reference_and_loci(self):
        cohort = self._cohort()
        assert len(cohort.samples) == 3
        for entry in cohort.samples:
            assert entry.sample.reference is cohort.reference
            # Same loci at every timepoint: only fractions differ.
            assert ([(v.chrom, v.pos, v.ref, v.alt)
                     for v in entry.sample.truth_variants]
                    == [(v.chrom, v.pos, v.ref, v.alt)
                        for v in cohort.shared_variants])

    def test_trajectories_cover_every_variant_and_drift(self):
        cohort = self._cohort(drift="rising")
        assert len(cohort.trajectories) == len(cohort.shared_variants)
        for path in cohort.trajectories.values():
            assert len(path) == 3
            assert all(0.0 < f <= 1.0 for f in path)
            assert path[0] <= path[-1]  # rising drift
        falling = self._cohort(drift="falling")
        for path in falling.trajectories.values():
            assert path[0] >= path[-1]

    def test_variants_at_applies_trajectory_fractions(self):
        cohort = self._cohort()
        for timepoint in range(3):
            for variant in cohort.variants_at(timepoint):
                key = (variant.chrom, variant.pos, variant.ref, variant.alt)
                assert variant.allele_fraction == (
                    cohort.trajectories[key][timepoint]
                )

    def test_cohort_is_deterministic_by_seed(self):
        a = self._cohort(seed=8)
        b = self._cohort(seed=8)
        assert a.trajectories == b.trajectories
        for sa, sb in zip(a.samples, b.samples):
            assert ([(r.name, r.pos, r.seq) for r in sa.sample.reads]
                    == [(r.name, r.pos, r.seq) for r in sb.sample.reads])
        different = self._cohort(seed=9)
        assert different.trajectories != a.trajectories

    def test_profile_validation(self):
        with pytest.raises(ValueError):
            CohortProfile(timepoints=0)
        with pytest.raises(ValueError):
            CohortProfile(fraction_floor=0.9, fraction_ceiling=0.5)
        with pytest.raises(ValueError):
            CohortProfile(drift="sideways")

    def test_indel_support_counts_gapped_reads(self):
        cohort = self._cohort(seed=12)
        indels = [v for v in cohort.shared_variants if v.is_indel]
        assert indels, "cohort plan produced no INDELs; pick another seed"
        reads = cohort.samples[-1].sample.reads
        for variant in indels:
            support, depth = indel_support(reads, variant)
            assert 0 <= support <= depth


class TestAdversarialWorkload:
    def test_sample_contains_every_corruption_kind(self):
        hostile = adversarial_sample(
            {"chrA": 5_000, "chrB": 3_000},
            sim_profile=SimulationProfile(coverage=14.0, indel_rate=1.5e-3),
            seed=3,
        )
        for kind in ("contaminant", "chimera", "low_quality_tail",
                     "adapter"):
            assert hostile.counts.get(kind, 0) > 0, f"no {kind} injected"
        names = {read.name for read in hostile.sample.reads}
        assert set(hostile.labels) <= names
        assert set(hostile.clean_read_names) == names - set(hostile.labels)

    def test_corrupted_reads_stay_structurally_valid(self):
        hostile = adversarial_sample({"chrA": 4_000}, seed=4)
        for read in hostile.sample.reads:
            assert read.is_mapped
            assert read.cigar.read_length == len(read)
            assert read.end <= len(next(iter(hostile.sample.reference)))

    def test_adapter_read_through_plants_the_adapter(self):
        hostile = adversarial_sample({"chrA": 6_000}, seed=3)
        adapters = [read for read in hostile.sample.reads
                    if hostile.labels.get(read.name) == ("adapter",)]
        assert adapters
        for read in adapters:
            assert read.seq.endswith(TRUSEQ_ADAPTER[: len(read)])

    def test_low_quality_tails_are_floored(self):
        profile = AdversarialProfile(low_quality_tail_rate=0.5,
                                     chimera_rate=0.0, adapter_rate=0.0,
                                     contamination_rate=0.0)
        hostile = adversarial_sample({"chrA": 4_000},
                                     adv_profile=profile, seed=6)
        tails = [read for read in hostile.sample.reads
                 if hostile.labels.get(read.name) == ("low_quality_tail",)]
        assert tails
        for read in tails:
            assert int(read.quals[-1]) == profile.tail_quality
