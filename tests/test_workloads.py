"""Unit tests for the workload census and generators."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.accelerator import IRUnit, UnitConfig
from repro.workloads.chromosomes import (
    ANCHOR_CH2_TARGETS,
    ANCHOR_CH21_TARGETS,
    CHROMOSOME_CENSUS,
    GRCH37_LENGTHS,
    census_for,
    total_targets,
)
from repro.workloads.generator import (
    BENCH_PROFILE,
    REAL_PROFILE,
    SiteProfile,
    chromosome_workload,
    expected_comparisons_per_site,
    synthesize_site,
)
from repro.workloads.toy import (
    NUM_CONSENSUSES,
    NUM_READS,
    NUM_TARGETS,
    figure7_toy_targets,
)


class TestCensus:
    def test_covers_22_chromosomes(self):
        assert len(CHROMOSOME_CENSUS) == 22
        assert {c.name for c in CHROMOSOME_CENSUS} == \
            {str(i) for i in range(1, 23)}

    def test_paper_anchors(self):
        assert census_for("21").ir_targets == ANCHOR_CH21_TARGETS
        assert census_for("2").ir_targets == ANCHOR_CH2_TARGETS

    def test_targets_increase_with_length(self):
        ordered = sorted(CHROMOSOME_CENSUS, key=lambda c: c.length_bp)
        counts = [c.ir_targets for c in ordered]
        assert counts == sorted(counts)
        assert all(count > 0 for count in counts)

    def test_complexity_band(self):
        for census in CHROMOSOME_CENSUS:
            assert 0.82 <= census.complexity < 1.24

    def test_reads_proportional_to_length(self):
        total_reads = sum(c.reads for c in CHROMOSOME_CENSUS)
        assert total_reads == pytest.approx(763_275_063, rel=1e-6)

    def test_total_and_lookup(self):
        assert total_targets() == sum(c.ir_targets for c in CHROMOSOME_CENSUS)
        with pytest.raises(KeyError):
            census_for("X")

    def test_lengths_are_grch37(self):
        assert GRCH37_LENGTHS["1"] == 249_250_621
        assert GRCH37_LENGTHS["21"] == 48_129_895


class TestGenerator:
    @given(st.integers(0, 200), st.floats(0.5, 1.5))
    @settings(max_examples=30, deadline=None)
    def test_sites_respect_paper_limits(self, seed, complexity):
        rng = np.random.default_rng(seed)
        site = synthesize_site(rng, BENCH_PROFILE, complexity=complexity)
        limits = BENCH_PROFILE.limits
        assert 2 <= site.num_consensuses <= limits.max_consensuses
        assert 2 <= site.num_reads <= limits.max_reads
        assert all(len(c) <= limits.max_consensus_length
                   for c in site.consensuses)
        assert all(len(r) <= limits.max_read_length for r in site.reads)
        max_read = max(len(r) for r in site.reads)
        assert all(len(c) >= max_read for c in site.consensuses)

    def test_deterministic_by_seed(self):
        a = synthesize_site(np.random.default_rng(3))
        b = synthesize_site(np.random.default_rng(3))
        assert a.consensuses == b.consensuses
        assert a.reads == b.reads

    def test_chromosome_workload_scaling(self):
        census = census_for("21")
        sites = chromosome_workload(census, 10 / census.ir_targets, seed=1)
        assert len(sites) == 10
        assert all(site.chrom == "21" for site in sites)
        with pytest.raises(ValueError):
            chromosome_workload(census, 0)

    def test_workload_always_at_least_one_site(self):
        census = census_for("21")
        assert len(chromosome_workload(census, 1e-9)) == 1

    def test_expected_comparisons_positive_and_monotone(self):
        base = expected_comparisons_per_site(REAL_PROFILE, 1.0)
        harder = expected_comparisons_per_site(REAL_PROFILE, 1.2)
        assert 0 < base < harder

    def test_profile_validation(self):
        with pytest.raises(ValueError):
            SiteProfile("bad", 1.0, 10.0, (10, 20), 100.0)
        with pytest.raises(ValueError):
            SiteProfile("bad", 4.0, 10.0, (20, 10), 100.0)


class TestToyWorkload:
    def test_figure7_geometry(self):
        sites = figure7_toy_targets()
        assert len(sites) == NUM_TARGETS == 8
        for site in sites:
            assert site.num_consensuses == NUM_CONSENSUSES == 2
            assert site.num_reads == NUM_READS == 8
            assert len(site.reference) == len(sites[0].reference)

    def test_pruning_variance_near_paper(self):
        sites = figure7_toy_targets()
        unit = IRUnit(UnitConfig(lanes=1))
        cycles = [unit.run_site(site).cycles.total for site in sites]
        ratio = cycles[3] / cycles[1]
        # Paper: "about 8 times"; same-sized targets throughout.
        assert 6.0 <= ratio <= 10.0
        assert max(cycles) == cycles[3]
