"""End-to-end integration: FASTQ -> alignment -> refinement -> calls."""

import numpy as np
import pytest

from repro.align.seed_extend import SeedAndExtendAligner
from repro.core.system import SystemConfig
from repro.genomics.fastq import FastqRecord
from repro.genomics.reference import ReferenceGenome
from repro.genomics.simulate import ReadSimulator, SimulationProfile
from repro.refinement.pipeline import RefinementPipeline
from repro.variants.caller import SomaticCaller
from repro.variants.evaluation import evaluate_calls


@pytest.fixture(scope="module")
def flow():
    rng = np.random.default_rng(33)
    reference = ReferenceGenome.random({"chr20": 2_500}, rng)
    profile = SimulationProfile(
        read_length=80, coverage=20, indel_rate=2e-3, snp_rate=1e-3,
        hotspot_mass=0.0, base_error_rate=0.002,
    )
    sample = ReadSimulator(reference, profile, seed=34).simulate()
    records = [FastqRecord(r.name, r.seq, r.quals) for r in sample.reads]
    aligner = SeedAndExtendAligner(reference)
    aligned = aligner.align(records)
    return reference, sample, aligned, aligner


class TestPrimaryAlignment:
    def test_most_reads_map_to_true_positions(self, flow):
        reference, sample, aligned, _ = flow
        truth_pos = {read.name: read.pos for read in sample.reads}
        mapped = [read for read in aligned if read.is_mapped]
        assert len(mapped) / len(aligned) > 0.95
        close = sum(
            1 for read in mapped
            if abs(read.pos - truth_pos[read.name]) <= 12
        )
        assert close / len(mapped) > 0.9

    def test_stage_counters_populated(self, flow):
        _, _, _, aligner = flow
        stats = aligner.stats
        assert stats.reads_total == stats.reads_aligned + (
            stats.reads_total - stats.reads_aligned
        )
        assert stats.dp_cells > 0
        assert stats.seed_hits > 0


class TestFullFlow:
    def test_refinement_then_calling(self, flow):
        reference, sample, aligned, _ = flow
        mapped = [read for read in aligned if read.is_mapped]
        refined = RefinementPipeline(
            reference, use_accelerator=True,
            system_config=SystemConfig.iracc(),
        ).run(mapped)
        assert len(refined.reads) == len(mapped)
        post = evaluate_calls(
            SomaticCaller(reference).call(refined.reads),
            sample.truth_variants,
        )
        pre = evaluate_calls(
            SomaticCaller(reference).call(mapped), sample.truth_variants
        )
        # Refinement never hurts, and the pipeline finds most variants.
        assert post.f1 >= pre.f1 - 0.02
        assert post.recall > 0.5
