"""Unit tests for repro.genomics.sequence."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.genomics.sequence import (
    BASES,
    SequenceError,
    complement,
    gc_content,
    hamming_distance,
    random_bases,
    reverse_complement,
    seq_from_array,
    seq_to_array,
    validate_bases,
)

bases_text = st.text(alphabet=BASES, max_size=200)


class TestValidation:
    def test_accepts_all_valid_bases(self):
        assert validate_bases("ACGTN") == "ACGTN"

    def test_accepts_empty(self):
        assert validate_bases("") == ""

    def test_rejects_lowercase(self):
        with pytest.raises(SequenceError, match="position 1"):
            validate_bases("AcGT")

    def test_rejects_unknown_character(self):
        with pytest.raises(SequenceError, match="invalid base 'X'"):
            validate_bases("ACXGT")


class TestArrayConversion:
    def test_to_array_ascii_codes(self):
        arr = seq_to_array("ACGT")
        assert arr.dtype == np.uint8
        assert arr.tolist() == [65, 67, 71, 84]

    def test_array_is_writable_copy(self):
        arr = seq_to_array("ACGT")
        arr[0] = ord("T")  # must not raise

    @given(bases_text)
    def test_roundtrip(self, seq):
        assert seq_from_array(seq_to_array(seq)) == seq


class TestComplement:
    def test_single_base(self):
        assert complement("A") == "T"
        assert complement("G") == "C"
        assert complement("N") == "N"

    def test_invalid_base(self):
        with pytest.raises(SequenceError):
            complement("Q")

    def test_reverse_complement(self):
        assert reverse_complement("AACGT") == "ACGTT"

    @given(bases_text)
    def test_reverse_complement_involution(self, seq):
        assert reverse_complement(reverse_complement(seq)) == seq


class TestRandomBases:
    def test_length_and_alphabet(self):
        seq = random_bases(500, np.random.default_rng(0))
        assert len(seq) == 500
        assert set(seq) <= set("ACGT")

    def test_deterministic_by_seed(self):
        a = random_bases(50, np.random.default_rng(7))
        b = random_bases(50, np.random.default_rng(7))
        assert a == b

    def test_negative_length_rejected(self):
        with pytest.raises(ValueError):
            random_bases(-1, np.random.default_rng(0))


class TestStats:
    def test_gc_content(self):
        assert gc_content("GGCC") == 1.0
        assert gc_content("AATT") == 0.0
        assert gc_content("ACGT") == 0.5

    def test_gc_content_ignores_n(self):
        assert gc_content("GCNN") == 1.0

    def test_gc_content_empty(self):
        assert gc_content("NNN") == 0.0

    def test_hamming_distance(self):
        assert hamming_distance("ACGT", "ACGA") == 1
        assert hamming_distance("AAAA", "TTTT") == 4

    def test_hamming_distance_length_mismatch(self):
        with pytest.raises(ValueError):
            hamming_distance("ACG", "ACGT")
