"""Unit and property tests for the Hamming Distance Calculator.

The load-bearing invariant of the whole evaluation: the cycle-stepped
datapath and the vectorized closed form agree on outputs, cycles, and
comparison counts, for every lane width and with pruning on or off.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.hdc import (
    OFFSET_OVERHEAD_CYCLES,
    PAIR_OVERHEAD_CYCLES,
    HammingDistanceCalculator,
    PairComputation,
)
from repro.genomics.sequence import seq_to_array
from repro.realign.whd import min_whd_pair


def pair_inputs(draw, max_m=40):
    n = draw(st.integers(1, 16))
    m = draw(st.integers(n, max_m))
    cons = draw(st.text(alphabet="ACGT", min_size=m, max_size=m))
    read = draw(st.text(alphabet="ACGT", min_size=n, max_size=n))
    quals = np.array(
        draw(st.lists(st.integers(0, 60), min_size=n, max_size=n)),
        dtype=np.uint8,
    )
    return seq_to_array(cons), seq_to_array(read), quals, cons, read


class TestSteppedVsAnalytic:
    @given(st.data(), st.sampled_from([1, 4, 32]), st.booleans())
    @settings(max_examples=80, deadline=None)
    def test_bit_identical(self, data, lanes, prune):
        cons, read, quals, _, _ = pair_inputs(data.draw)
        hdc = HammingDistanceCalculator(lanes=lanes, prune=prune)
        stepped = hdc.compute_pair_stepped(cons, read, quals)
        analytic = hdc.compute_pair(cons, read, quals)
        assert stepped == analytic


class TestFunctionalCorrectness:
    @given(st.data(), st.sampled_from([1, 8, 32]), st.booleans())
    @settings(max_examples=60, deadline=None)
    def test_matches_algorithm1(self, data, lanes, prune):
        cons, read, quals, cons_s, read_s = pair_inputs(data.draw)
        hdc = HammingDistanceCalculator(lanes=lanes, prune=prune)
        result = hdc.compute_pair(cons, read, quals)
        expected_whd, expected_idx = min_whd_pair(cons_s, read_s, quals)
        assert result.min_whd == expected_whd
        assert result.min_whd_idx == expected_idx

    @given(st.data())
    @settings(max_examples=40, deadline=None)
    def test_pruning_never_changes_outputs(self, data):
        cons, read, quals, _, _ = pair_inputs(data.draw)
        pruned = HammingDistanceCalculator(lanes=1, prune=True).compute_pair(
            cons, read, quals
        )
        unpruned = HammingDistanceCalculator(lanes=1, prune=False).compute_pair(
            cons, read, quals
        )
        assert pruned.min_whd == unpruned.min_whd
        assert pruned.min_whd_idx == unpruned.min_whd_idx


class TestWorkAccounting:
    @given(st.data(), st.sampled_from([1, 32]))
    @settings(max_examples=40, deadline=None)
    def test_pruned_work_bounded_by_unpruned(self, data, lanes):
        cons, read, quals, _, _ = pair_inputs(data.draw)
        hdc = HammingDistanceCalculator(lanes=lanes, prune=True)
        result = hdc.compute_pair(cons, read, quals)
        assert 0 < result.comparisons <= result.unpruned_comparisons
        assert 0.0 <= result.pruned_fraction < 1.0

    def test_unpruned_cycle_formula_scalar(self):
        cons = seq_to_array("ACGTACGTAC")  # m = 10
        read = seq_to_array("ACGT")  # n = 4, K = 7
        quals = np.full(4, 30, np.uint8)
        hdc = HammingDistanceCalculator(lanes=1, prune=False)
        result = hdc.compute_pair(cons, read, quals)
        assert result.comparisons == 7 * 4
        assert result.cycles == 7 * 4 + 7 * OFFSET_OVERHEAD_CYCLES + \
            PAIR_OVERHEAD_CYCLES

    def test_unpruned_cycle_formula_parallel(self):
        cons = seq_to_array("ACGT" * 20)  # m = 80
        read = seq_to_array("ACGT" * 10)  # n = 40, K = 41
        quals = np.full(40, 30, np.uint8)
        hdc = HammingDistanceCalculator(lanes=32, prune=False)
        result = hdc.compute_pair(cons, read, quals)
        # ceil(40 / 32) = 2 chunks per offset.
        assert result.cycles == 41 * 2 + 41 * OFFSET_OVERHEAD_CYCLES + \
            PAIR_OVERHEAD_CYCLES

    def test_pruning_reduces_work_on_clean_pileup(self):
        # A read matching at offset 0 prunes nearly everything after.
        rng = np.random.default_rng(3)
        from repro.genomics.sequence import random_bases
        cons_s = random_bases(400, rng)
        read_s = cons_s[:64]
        quals = np.full(64, 35, np.uint8)
        hdc = HammingDistanceCalculator(lanes=1, prune=True)
        result = hdc.compute_pair(seq_to_array(cons_s), seq_to_array(read_s),
                                  quals)
        assert result.pruned_fraction > 0.9

    @given(st.data())
    @settings(max_examples=30, deadline=None)
    def test_wider_lanes_never_more_cycles(self, data):
        cons, read, quals, _, _ = pair_inputs(data.draw)
        narrow = HammingDistanceCalculator(lanes=1, prune=True).compute_pair(
            cons, read, quals
        )
        wide = HammingDistanceCalculator(lanes=32, prune=True).compute_pair(
            cons, read, quals
        )
        assert wide.cycles <= narrow.cycles


class TestValidation:
    def test_zero_lanes_rejected(self):
        with pytest.raises(ValueError):
            HammingDistanceCalculator(lanes=0)

    def test_read_longer_than_consensus_rejected(self):
        hdc = HammingDistanceCalculator()
        with pytest.raises(ValueError):
            hdc.compute_pair(seq_to_array("AC"), seq_to_array("ACGT"),
                             np.full(4, 1, np.uint8))

    def test_pruned_fraction_zero_division(self):
        pc = PairComputation(0, 0, 1, 0, 0)
        assert pc.pruned_fraction == 0.0
