"""Unit tests for the performance models, cost models, and baselines."""

import numpy as np
import pytest

from repro.baselines.adam import AdamBaseline
from repro.baselines.gatk3 import Gatk3Baseline
from repro.baselines.gpu import (
    GPU_SURVEY,
    required_speedup,
    survey_max_speedup,
)
from repro.baselines.hls import OPENCL_MAX_COMPUTE_UNITS, hls_system_config
from repro.perf.cost import cost_efficiency, cost_of_run, required_gpu_speedup
from repro.perf.instances import F1_2XLARGE, INSTANCE_CATALOG, P3_2XLARGE, R3_2XLARGE
from repro.perf.model import (
    GATK3_WHOLE_GENOME_SECONDS,
    Gatk3PerformanceModel,
    census_unpruned_comparisons,
)
from repro.perf.pipelines import (
    PRIMARY_STAGE_SPLIT,
    REFINEMENT_STAGE_SPLIT,
    average_ir_fraction,
    ir_share_of_total,
    pipeline_fractions,
    refinement_breakdown,
    stage_hours,
)
from repro.workloads.chromosomes import CHROMOSOME_CENSUS, census_for
from repro.workloads.generator import synthesize_site


class TestInstances:
    def test_paper_prices(self):
        assert F1_2XLARGE.price_per_hour == 1.65
        assert R3_2XLARGE.price_per_hour == 0.665
        assert P3_2XLARGE.price_per_hour == 3.06

    def test_table2_configuration(self):
        assert F1_2XLARGE.fpga == "Xilinx Virtex UltraScale+ VU9P"
        assert F1_2XLARGE.fpga_memory_gib == 64.0
        assert R3_2XLARGE.cores == 4 and R3_2XLARGE.threads == 8
        assert set(INSTANCE_CATALOG) == {"f1.2xlarge", "r3.2xlarge",
                                         "p3.2xlarge"}

    def test_cost(self):
        assert R3_2XLARGE.cost(3600) == pytest.approx(0.665)
        with pytest.raises(ValueError):
            R3_2XLARGE.cost(-1)


class TestGatk3Model:
    def test_calibration_reproduces_42_hours(self):
        model = Gatk3PerformanceModel.calibrated()
        total = census_unpruned_comparisons()
        assert model.seconds_for_comparisons(total) == pytest.approx(
            GATK3_WHOLE_GENOME_SECONDS
        )

    def test_whole_genome_costs_28_dollars(self):
        report = cost_of_run("GATK3", R3_2XLARGE, GATK3_WHOLE_GENOME_SECONDS)
        assert report.dollars == pytest.approx(28.0, rel=0.01)

    def test_thread_scaling_saturates_at_8(self):
        model = Gatk3PerformanceModel(comparisons_per_second=1e9)
        t4 = model.seconds_for_comparisons(1e9, threads=4)
        t8 = model.seconds_for_comparisons(1e9, threads=8)
        t16 = model.seconds_for_comparisons(1e9, threads=16)
        assert t4 == pytest.approx(2 * t8)
        assert t16 == t8

    def test_per_chromosome_proportional_to_census(self):
        model = Gatk3PerformanceModel.calibrated()
        small = model.seconds_for_chromosome(census_for("21"))
        large = model.seconds_for_chromosome(census_for("2"))
        assert large > small

    def test_baseline_wraps_model(self):
        baseline = Gatk3Baseline()
        sites = [synthesize_site(np.random.default_rng(1))]
        assert baseline.seconds_for_sites(sites) > 0


class TestAdam:
    def test_relative_speedup_consistent_with_paper_gmeans(self):
        adam = AdamBaseline()
        assert adam.speedup_over_gatk3 == pytest.approx(81.3 / 41.4)

    def test_adam_costs_about_14_50(self):
        adam = AdamBaseline()
        seconds = GATK3_WHOLE_GENOME_SECONDS / adam.speedup_over_gatk3
        assert cost_of_run("ADAM", R3_2XLARGE, seconds).dollars == \
            pytest.approx(14.5, rel=0.02)

    def test_faster_than_gatk3(self):
        adam = AdamBaseline()
        assert adam.seconds_for_comparisons(1e12) < \
            adam.gatk3_model.seconds_for_comparisons(1e12)


class TestHls:
    def test_documented_limitations(self):
        config = hls_system_config()
        assert config.num_units == OPENCL_MAX_COMPUTE_UNITS == 16
        assert config.lanes == 1


class TestGpu:
    def test_required_speedup_is_paper_value(self):
        assert required_speedup(80.0) == pytest.approx(148.36, abs=0.01)
        assert required_gpu_speedup(P3_2XLARGE, F1_2XLARGE, 80.0) == \
            pytest.approx(148.36, abs=0.01)

    def test_survey_far_below_requirement(self):
        assert survey_max_speedup() < required_speedup(80.0) / 5
        assert len(GPU_SURVEY) == 4


class TestCost:
    def test_cost_efficiency(self):
        gatk3 = cost_of_run("GATK3", R3_2XLARGE, 42.1 * 3600)
        iracc = cost_of_run("IR ACC", F1_2XLARGE, 42.1 * 3600 / 80)
        assert cost_efficiency(gatk3, iracc) == pytest.approx(32.3, abs=0.5)


class TestPipelineModel:
    def test_pipeline_fractions(self):
        fractions = pipeline_fractions()
        assert sum(fractions.values()) == pytest.approx(1.0)
        # Paper: primary < 15%, refinement ~ 60%.
        assert fractions["primary_alignment"] < 0.15
        assert fractions["alignment_refinement"] == pytest.approx(0.576,
                                                                  abs=0.01)

    def test_stage_splits_sum_to_one(self):
        assert sum(PRIMARY_STAGE_SPLIT.values()) == pytest.approx(1.0)
        assert sum(REFINEMENT_STAGE_SPLIT.values()) == pytest.approx(1.0)

    def test_smith_waterman_share_of_total(self):
        hours = stage_hours()
        total = 125.0
        sw = hours["primary_alignment"]["seed_extension_smith_waterman"]
        sa = hours["primary_alignment"]["suffix_array_lookup"]
        assert sw / total == pytest.approx(0.05, abs=0.005)
        assert sa / total == pytest.approx(0.015, abs=0.002)

    def test_ir_share_of_total_near_34_percent(self):
        assert ir_share_of_total() == pytest.approx(0.334, abs=0.01)

    def test_figure3_breakdown(self):
        rows = refinement_breakdown()
        assert len(rows) == 22
        assert average_ir_fraction(rows) == pytest.approx(0.58, abs=0.005)
        fractions = [row.ir_fraction for row in rows]
        # Paper range is 53-67%; allow a modestly wider synthetic band.
        assert min(fractions) > 0.40
        assert max(fractions) < 0.72
