"""Unit and property tests for sync/async target scheduling."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.scheduler import (
    ScheduledTarget,
    schedule,
    schedule_async,
    schedule_sync,
)

targets_strategy = st.lists(
    st.tuples(st.integers(0, 20), st.integers(1, 500)), min_size=1,
    max_size=60,
).map(lambda pairs: [
    ScheduledTarget(index=i, transfer_cycles=t, compute_cycles=c)
    for i, (t, c) in enumerate(pairs)
])


def simple_targets(computes, transfer=0):
    return [
        ScheduledTarget(index=i, transfer_cycles=transfer, compute_cycles=c)
        for i, c in enumerate(computes)
    ]


class TestSync:
    def test_batch_barrier(self):
        # Two batches of 2 on 2 units: makespan = max(batch1) + max(batch2).
        result = schedule_sync(simple_targets([10, 80, 30, 5]), 2)
        assert result.makespan == 80 + 30

    def test_transfer_serialized_before_batch(self):
        result = schedule_sync(simple_targets([10, 10], transfer=3), 2)
        assert result.makespan == 6 + 10

    def test_idle_units_visible_in_utilization(self):
        result = schedule_sync(simple_targets([100, 1, 1, 1]), 4)
        assert result.utilization == pytest.approx(103 / 400)


class TestAsync:
    def test_work_conserving(self):
        # 4 targets on 2 units: [10, 80] then unit0 takes 30 and 5.
        result = schedule_async(simple_targets([10, 80, 30, 5]), 2)
        assert result.makespan == 80

    def test_transfer_gates_start(self):
        result = schedule_async(simple_targets([10, 10], transfer=7), 2)
        spans = sorted(result.spans, key=lambda s: s.target_index)
        assert spans[0].start == 7
        assert spans[1].start == 14

    def test_beats_sync_on_imbalanced_batches(self):
        computes = [100, 1, 1, 1] * 8
        sync = schedule_sync(simple_targets(computes), 4)
        async_ = schedule_async(simple_targets(computes), 4)
        assert async_.makespan < sync.makespan


class TestDispatch:
    def test_scheme_dispatch(self):
        targets = simple_targets([5])
        assert schedule(targets, 1, "sync").makespan == 5
        assert schedule(targets, 1, "async").makespan == 5
        with pytest.raises(ValueError):
            schedule(targets, 1, "magic")

    def test_positive_units_required(self):
        with pytest.raises(ValueError):
            schedule_sync([], 0)

    def test_negative_cycles_rejected(self):
        with pytest.raises(ValueError):
            ScheduledTarget(index=0, transfer_cycles=-1, compute_cycles=1)


class TestInvariants:
    @given(targets_strategy, st.integers(1, 8),
           st.sampled_from(["sync", "async"]))
    @settings(max_examples=60, deadline=None)
    def test_schedule_invariants(self, targets, num_units, scheme):
        result = schedule(targets, num_units, scheme)
        # Every target scheduled exactly once.
        assert sorted(s.target_index for s in result.spans) == \
            sorted(t.index for t in targets)
        # Spans on one unit never overlap.
        by_unit = {}
        for span in result.spans:
            by_unit.setdefault(span.unit, []).append(span)
        for spans in by_unit.values():
            ordered = sorted(spans, key=lambda s: s.start)
            for a, b in zip(ordered, ordered[1:]):
                assert a.end <= b.start
        # Makespan bounds: at least the critical path, at most serial.
        total = sum(t.compute_cycles + t.transfer_cycles for t in targets)
        longest = max(t.compute_cycles for t in targets)
        assert longest <= result.makespan <= total
        # Utilization is a fraction.
        assert 0.0 <= result.utilization <= 1.0

    @given(targets_strategy, st.integers(1, 8))
    @settings(max_examples=40, deadline=None)
    def test_async_never_slower_than_sync(self, targets, num_units):
        sync = schedule_sync(targets, num_units)
        async_ = schedule_async(targets, num_units)
        assert async_.makespan <= sync.makespan


class TestTimeline:
    def test_ascii_render(self):
        result = schedule_async(simple_targets([50, 50]), 2)
        art = result.ascii_timeline(width=20)
        lines = art.splitlines()
        assert len(lines) == 2
        assert "0" in lines[0] and "1" in lines[1]

    def test_empty_schedule(self):
        result = schedule_async([], 2)
        assert result.ascii_timeline() == "(empty schedule)"
        assert result.utilization == 0.0
