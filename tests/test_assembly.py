"""Unit tests for the de Bruijn-graph assembly extension."""

import numpy as np
import pytest

from repro.genomics.cigar import Cigar, CigarOp
from repro.genomics.read import Read
from repro.genomics.reference import Contig, ReferenceGenome
from repro.genomics.sequence import random_bases
from repro.realign.assembly import (
    AssemblyConfig,
    DeBruijnGraph,
    assemble_haplotypes,
    build_site_by_assembly,
)
from repro.realign.realigner import IndelRealigner
from repro.realign.targets import RealignmentTarget


def full_quals(n):
    return np.full(n, 30, np.uint8)


class TestDeBruijnGraph:
    def test_single_sequence_single_path(self):
        graph = DeBruijnGraph(4)
        graph.add_sequence("ACGTACCC", is_reference=True)
        haplotypes = graph.enumerate_haplotypes("ACG", "CCC", 4, 100)
        assert haplotypes == ["ACGTACCC"]

    def test_bubble_yields_two_haplotypes(self):
        graph = DeBruijnGraph(4)
        graph.add_sequence("AAATCGGGCTTT", is_reference=True)
        graph.add_sequence("AAATCAGCTTT")  # one-base divergence bubble
        haplotypes = graph.enumerate_haplotypes("AAA", "TTT", 4, 100)
        assert "AAATCGGGCTTT" in haplotypes
        assert len(haplotypes) >= 2

    def test_prune_keeps_reference_edges(self):
        graph = DeBruijnGraph(4)
        graph.add_sequence("AAATCGGGCTTT", is_reference=True)
        graph.add_sequence("AAATCAGCTTT")  # weight-1 alternate
        graph.prune(min_weight=2)
        haplotypes = graph.enumerate_haplotypes("AAA", "TTT", 4, 100)
        assert haplotypes == ["AAATCGGGCTTT"]

    def test_missing_anchor_returns_empty(self):
        graph = DeBruijnGraph(4)
        graph.add_sequence("ACGTACGT")
        assert graph.enumerate_haplotypes("TTT", "GGG", 4, 100) == []

    def test_kmer_size_validation(self):
        with pytest.raises(ValueError):
            DeBruijnGraph(2)
        with pytest.raises(ValueError):
            AssemblyConfig(kmer_size=2)


@pytest.fixture
def deletion_scenario():
    rng = np.random.default_rng(15)
    ref_seq = random_bases(2_000, rng)
    reference = ReferenceGenome([Contig("c", ref_seq)])
    donor = ref_seq[:1000] + ref_seq[1005:]
    reads = []
    L = 80
    for i, start in enumerate(range(940, 1000, 5)):
        seq = donor[start : start + L]
        k = 1000 - start
        if i % 2 == 0:
            cigar = Cigar.parse(f"{k}M5D{L - k}M")
        else:
            cigar = Cigar.parse(f"{L}M")
        reads.append(Read(f"r{i}", "c", start, seq, full_quals(L), cigar))
    return reference, ref_seq, reads


class TestAssembly:
    def test_assembles_deletion_haplotype(self, deletion_scenario):
        reference, ref_seq, reads = deletion_scenario
        window = reference.fetch("c", 850, 1150)
        haplotypes = assemble_haplotypes(window, reads)
        donor_window = ref_seq[850:1000] + ref_seq[1005:1150]
        assert window in haplotypes or any(
            len(h) == len(window) for h in haplotypes
        )
        assert donor_window in haplotypes

    def test_build_site_by_assembly(self, deletion_scenario):
        reference, _ref_seq, reads = deletion_scenario
        target = RealignmentTarget("c", 950, 1100)
        built = build_site_by_assembly(target, reads, reference)
        assert built is not None
        assert built.site.num_consensuses >= 2
        deletion_indels = [
            i for i in built.indels[1:]
            if i is not None and i.op is CigarOp.DELETION and i.length == 5
        ]
        assert deletion_indels
        assert deletion_indels[0].ref_pos == 1000

    def test_realigner_with_assembly_strategy(self, deletion_scenario):
        reference, ref_seq, reads = deletion_scenario
        realigner = IndelRealigner(reference, consensus_strategy="assembly")
        updated, report = realigner.realign(reads)
        assert report.reads_realigned > 0
        for orig, new in zip(reads, updated):
            if not orig.has_indel:
                k = 1000 - orig.pos
                assert str(new.cigar) == f"{k}M5D{80 - k}M"

    def test_strategies_agree_on_simple_scenario(self, deletion_scenario):
        reference, _ref_seq, reads = deletion_scenario
        observed, _ = IndelRealigner(
            reference, consensus_strategy="observed"
        ).realign(reads)
        assembled, _ = IndelRealigner(
            reference, consensus_strategy="assembly"
        ).realign(reads)
        for a, b in zip(observed, assembled):
            assert a.pos == b.pos and str(a.cigar) == str(b.cigar)

    def test_unknown_strategy_rejected(self, deletion_scenario):
        reference, _ref_seq, _reads = deletion_scenario
        with pytest.raises(ValueError):
            IndelRealigner(reference, consensus_strategy="magic")
