"""Unit tests for repro.genomics.read."""

import numpy as np
import pytest

from repro.genomics.cigar import Cigar
from repro.genomics.read import Read, coordinate_key


def make_read(name="r", chrom="1", pos=100, seq="ACGTACGT", cigar="8M",
              **kwargs):
    return Read(
        name=name, chrom=chrom, pos=pos, seq=seq,
        quals=np.full(len(seq), 30, dtype=np.uint8),
        cigar=Cigar.parse(cigar) if cigar else None,
        **kwargs,
    )


class TestConstruction:
    def test_valid(self):
        read = make_read()
        assert read.is_mapped
        assert len(read) == 8

    def test_quality_length_mismatch(self):
        with pytest.raises(ValueError, match="quality scores"):
            Read("r", "1", 0, "ACGT", np.array([30, 30], dtype=np.uint8))

    def test_cigar_length_mismatch(self):
        with pytest.raises(Exception):
            make_read(cigar="7M")

    def test_negative_position(self):
        with pytest.raises(ValueError, match="negative"):
            make_read(pos=-1)

    def test_unmapped_read(self):
        read = Read("r", None, 0, "ACGT", np.full(4, 20, np.uint8))
        assert not read.is_mapped
        with pytest.raises(ValueError):
            _ = read.end

    def test_bad_mapq(self):
        with pytest.raises(ValueError, match="mapq"):
            make_read(mapq=500)


class TestCoordinates:
    def test_end_accounts_for_deletions(self):
        read = make_read(cigar="4M2D4M")
        assert read.end == 100 + 4 + 2 + 4

    def test_end_ignores_insertions(self):
        read = make_read(cigar="4M2I2M")
        assert read.end == 100 + 6

    def test_span(self):
        assert make_read().span == (100, 108)


class TestIntervalPredicates:
    def test_overlaps(self):
        read = make_read()  # [100, 108)
        assert read.overlaps(0, 101)
        assert read.overlaps(107, 200)
        assert not read.overlaps(108, 200)
        assert not read.overlaps(0, 100)

    def test_anchored_in_start(self):
        read = make_read()
        assert read.anchored_in(100, 101)
        assert read.anchored_in(95, 101)

    def test_anchored_in_end(self):
        read = make_read()  # last aligned base at 107
        assert read.anchored_in(107, 110)
        assert not read.anchored_in(108, 110)

    def test_spanning_read_not_anchored(self):
        # Both start and end outside a narrow interval: the paper's rule
        # excludes it even though it overlaps.
        read = make_read()
        assert read.overlaps(103, 105)
        assert not read.anchored_in(103, 105)


class TestUpdates:
    def test_realigned_default_cigar(self):
        read = make_read(cigar="4M2D4M")
        updated = read.realigned(42)
        assert updated.pos == 42
        assert str(updated.cigar) == "8M"
        assert read.pos == 100  # original untouched

    def test_realigned_with_cigar(self):
        updated = make_read().realigned(42, Cigar.parse("4M1D4M"))
        assert str(updated.cigar) == "4M1D4M"

    def test_marked_duplicate(self):
        assert make_read().marked_duplicate().is_duplicate

    def test_with_quals(self):
        updated = make_read().with_quals(np.full(8, 11, np.uint8))
        assert updated.quals.tolist() == [11] * 8


class TestCoordinateKey:
    def test_orders_mapped_before_unmapped(self):
        mapped = make_read()
        unmapped = Read("u", None, 0, "ACGT", np.full(4, 20, np.uint8))
        assert coordinate_key(mapped) < coordinate_key(unmapped)

    def test_orders_by_position(self):
        assert coordinate_key(make_read(pos=5)) < coordinate_key(make_read(pos=9))
