"""Unit tests for repro.genomics.cigar."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.genomics.cigar import (
    Cigar,
    CigarError,
    CigarOp,
    validate_cigar_against_read,
)

element = st.tuples(
    st.sampled_from(list(CigarOp)), st.integers(min_value=1, max_value=50)
)


class TestParsing:
    def test_parse_simple(self):
        cigar = Cigar.parse("70M2D30M")
        assert cigar.elements == (
            (CigarOp.MATCH, 70), (CigarOp.DELETION, 2), (CigarOp.MATCH, 30),
        )

    def test_str_roundtrip(self):
        assert str(Cigar.parse("5S10M3I7M")) == "5S10M3I7M"

    def test_rejects_empty(self):
        with pytest.raises(CigarError):
            Cigar.parse("")

    def test_rejects_unknown_op(self):
        with pytest.raises(CigarError):
            Cigar.parse("10M5X")

    def test_rejects_missing_length(self):
        with pytest.raises(CigarError):
            Cigar.parse("M")

    def test_rejects_zero_length_element(self):
        with pytest.raises(CigarError):
            Cigar(((CigarOp.MATCH, 0),))

    @given(st.lists(element, min_size=1, max_size=10))
    def test_parse_format_roundtrip(self, elements):
        cigar = Cigar(tuple(elements))
        assert Cigar.parse(str(cigar)) == cigar


class TestFromElements:
    def test_merges_adjacent_same_op(self):
        cigar = Cigar.from_elements(
            [(CigarOp.MATCH, 10), (CigarOp.MATCH, 5), (CigarOp.DELETION, 2)]
        )
        assert str(cigar) == "15M2D"

    def test_drops_zero_lengths(self):
        cigar = Cigar.from_elements(
            [(CigarOp.MATCH, 10), (CigarOp.INSERTION, 0), (CigarOp.MATCH, 2)]
        )
        assert str(cigar) == "12M"

    def test_matched(self):
        assert str(Cigar.matched(100)) == "100M"


class TestLengths:
    def test_read_and_reference_lengths(self):
        cigar = Cigar.parse("5S20M3I10M2D15M")
        assert cigar.read_length == 5 + 20 + 3 + 10 + 15
        assert cigar.reference_length == 20 + 10 + 2 + 15

    def test_validate_against_read(self):
        validate_cigar_against_read(Cigar.parse("10M"), 10)
        with pytest.raises(CigarError):
            validate_cigar_against_read(Cigar.parse("10M"), 11)

    @given(st.lists(element, min_size=1, max_size=10))
    def test_lengths_consistent(self, elements):
        cigar = Cigar(tuple(elements))
        read_len = sum(l for op, l in elements if op.consumes_read)
        ref_len = sum(l for op, l in elements if op.consumes_reference)
        assert cigar.read_length == read_len
        assert cigar.reference_length == ref_len


class TestIndels:
    def test_has_indel(self):
        assert Cigar.parse("10M2I10M").has_indel
        assert Cigar.parse("10M2D10M").has_indel
        assert not Cigar.parse("10M5S").has_indel

    def test_indel_offsets(self):
        cigar = Cigar.parse("10M2I5M3D10M")
        assert cigar.indels() == [
            (10, CigarOp.INSERTION, 2), (15, CigarOp.DELETION, 3),
        ]

    def test_soft_clip_does_not_advance_reference(self):
        cigar = Cigar.parse("5S10M1D10M")
        assert cigar.indels() == [(10, CigarOp.DELETION, 1)]


class TestAlignedPairs:
    def test_simple_match(self):
        assert Cigar.parse("3M").aligned_pairs() == [(0, 0), (1, 1), (2, 2)]

    def test_insertion_skips_reference(self):
        pairs = Cigar.parse("2M1I2M").aligned_pairs()
        assert pairs == [(0, 0), (1, 1), (3, 2), (4, 3)]

    def test_deletion_skips_read(self):
        pairs = Cigar.parse("2M1D2M").aligned_pairs()
        assert pairs == [(0, 0), (1, 1), (2, 3), (3, 4)]

    def test_soft_clip_consumes_read_only(self):
        pairs = Cigar.parse("2S2M").aligned_pairs()
        assert pairs == [(2, 0), (3, 1)]
