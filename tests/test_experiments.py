"""Integration tests for the experiment harness (paper tables/figures)."""

import pytest

from repro.experiments import (
    comparisons,
    figure2,
    figure3,
    figure4,
    figure7,
    figure9,
    microarch,
    tables,
)
from repro.experiments.reporting import banner, format_table


class TestReporting:
    def test_format_table_alignment(self):
        text = format_table(["a", "bb"], [[1, 2.5], ["xyz", 0.001]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")

    def test_row_width_mismatch(self):
        with pytest.raises(ValueError):
            format_table(["a"], [[1, 2]])

    def test_banner(self):
        assert "Figure" in banner("Figure X")


class TestFigure4:
    def test_every_value_matches_paper(self):
        outcome = figure4.run()
        assert outcome.matches_paper
        assert outcome.whd_ref_read0 == [85, 75, 30, 65]
        assert outcome.whd_ref_read1 == [20, 80, 120, 120]
        assert outcome.result.scores.tolist() == [0, 30, 35]


class TestFigure7:
    def test_toy_experiment(self):
        outcome = figure7.run()
        assert 6.0 <= outcome.t3_over_t1 <= 10.0  # paper: ~8x
        assert outcome.async_speedup > 1.3
        assert outcome.async_.utilization > outcome.sync.utilization
        assert len(outcome.sync.spans) == 8


class TestFigure2:
    def test_model_shares(self):
        outcome = figure2.run(execute_pipeline=False)
        assert outcome.pipeline_shares["primary_alignment"] < 0.15
        assert 0.55 < outcome.pipeline_shares["alignment_refinement"] < 0.62
        assert outcome.ir_total_share == pytest.approx(0.334, abs=0.01)

    def test_executed_pipeline_ir_dominates_refinement(self):
        outcome = figure2.run(execute_pipeline=True, seed=3)
        assert outcome.measured is not None
        # IR is the largest refinement stage in the executed pipeline too.
        fractions = {
            stage.stage: outcome.measured.fraction(stage.stage)
            for stage in outcome.measured.stages
        }
        assert fractions["indel_realignment"] == max(fractions.values())


class TestFigure3:
    def test_average_and_range(self):
        outcome = figure3.run()
        assert outcome.average == pytest.approx(0.58, abs=0.005)
        assert 0.40 < outcome.minimum < outcome.maximum < 0.72
        assert len(outcome.rows) == 22


class TestTables:
    def test_table1_roundtrip_and_counts(self):
        outcome = tables.run_table1()
        assert outcome.roundtrip_ok
        assert len(outcome.commands) == 5
        assert outcome.commands_for_32_consensuses == 40

    def test_table2(self):
        outcome = tables.run_table2()
        assert outcome.f1.name == "f1.2xlarge"
        assert outcome.r3.name == "r3.2xlarge"


class TestFigure9Small:
    @pytest.fixture(scope="class")
    def outcome(self):
        # A reduced run: two chromosomes, all design points.
        return figure9.run(
            sites_per_chromosome=24, replication=16,
            chromosomes=("2", "21"), design_subset=("2", "21"),
        )

    def test_iracc_wins_by_a_large_factor(self, outcome):
        assert all(row.iracc_speedup > 20 for row in outcome.rows)

    def test_design_point_ordering(self, outcome):
        for row in outcome.rows:
            taskp = row.speedup("IRAcc-TaskP")
            async_ = row.speedup("IRAcc-TaskP-Async")
            iracc = row.iracc_speedup
            assert taskp < async_ < iracc
            hls = row.speedup("HLS-SDAccel")
            assert taskp < hls < iracc

    def test_adam_between_gatk3_and_iracc(self, outcome):
        for row in outcome.rows:
            assert row.gatk3_seconds > row.adam_seconds
            assert row.adam_speedup < row.iracc_speedup

    def test_costs_reproduce_paper_bars(self, outcome):
        costs = outcome.costs
        assert costs["GATK3"].dollars == pytest.approx(28.0, rel=0.01)
        assert costs["ADAM"].dollars == pytest.approx(14.5, rel=0.02)
        # IR ACC lands within a factor ~2 of the 90-cent bar even on the
        # reduced workload.
        assert costs["IR ACC"].dollars < 2.0


class TestMicroarch:
    def test_claims(self):
        outcome = microarch.run(num_sites=24, replication=8)
        assert outcome.pruned_fraction > 0.50  # paper: "> 50%"
        assert outcome.datapath_pruned_fraction > 0.25
        assert outcome.fitted_units == 32
        assert outcome.utilization32.bram_utilization == pytest.approx(
            0.876, abs=0.01
        )
        assert outcome.peak_comparisons_per_second == pytest.approx(4e9)
        assert outcome.dma_fraction < 0.05


class TestComparisons:
    def test_survey_and_requirement(self):
        outcome = comparisons.run(sites_per_chromosome=16, replication=8,
                                  chromosomes=("21",))
        assert outcome.gpu_required == pytest.approx(148.36, abs=0.01)
        assert outcome.gpu_survey_best < 20
        assert all(s > 10 for s in outcome.adam_speedups)
        lo, hi = outcome.hls_range
        assert 0.5 < lo <= hi < 8.0
