"""Golden-file regression tests: exact realigner output, pinned.

These tests recompute the realigner's observable output and compare it
*exactly* against the JSON goldens in ``tests/golden/``. Any drift --
one read landing one base off, one WHD cell changing -- fails with a
message naming the first divergent record.

If a behaviour change is intentional, regenerate the goldens
deliberately and commit them with the change:

    PYTHONPATH=src python tests/golden/regenerate.py
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

import numpy as np
import pytest

GOLDEN_DIR = Path(__file__).resolve().parent / "golden"
sys.path.insert(0, str(GOLDEN_DIR))

from regenerate import (  # noqa: E402  (needs the path hack above)
    REALIGN_PARAMS,
    SITE_COMPLEXITIES,
    SITE_SEED,
    evaluation_golden,
    realigned_sam_golden,
    site_results_golden,
)

REGEN_HINT = (
    "If this drift is an intentional behaviour change, regenerate with "
    "`PYTHONPATH=src python tests/golden/regenerate.py` and commit the "
    "new goldens alongside the change."
)


def _load(name: str) -> dict:
    path = GOLDEN_DIR / name
    assert path.exists(), (
        f"golden file {path} is missing -- run tests/golden/regenerate.py"
    )
    return json.loads(path.read_text())


class TestRealignedSamGolden:
    @pytest.fixture(scope="class")
    def recomputed(self):
        return realigned_sam_golden()

    @pytest.fixture(scope="class")
    def golden(self):
        return _load("realigned_sam.json")

    def test_parameters_match_golden(self, recomputed, golden):
        assert recomputed["params"] == golden["params"], (
            "regenerate.py parameters changed without regenerating the "
            f"golden. {REGEN_HINT}"
        )

    def test_report_counts(self, recomputed, golden):
        for key in ("targets_identified", "sites_built", "reads_realigned"):
            assert recomputed[key] == golden[key], (
                f"realigner {key} drifted: golden {golden[key]}, "
                f"got {recomputed[key]}. {REGEN_HINT}"
            )

    def test_every_read_position_and_cigar(self, recomputed, golden):
        assert len(recomputed["reads"]) == len(golden["reads"]), (
            f"read count drifted: golden {len(golden['reads'])}, got "
            f"{len(recomputed['reads'])}. {REGEN_HINT}"
        )
        for index, (got, want) in enumerate(
            zip(recomputed["reads"], golden["reads"])
        ):
            assert got == want, (
                f"read #{index} ({want['name']}) drifted: expected "
                f"pos={want['pos']} cigar={want['cigar']}, got "
                f"pos={got['pos']} cigar={got['cigar']}. {REGEN_HINT}"
            )

    def test_accelerated_path_matches_the_same_golden(self, golden):
        """The FPGA system model must land every read where the golden
        (software) realigner does -- HW/SW equivalence, pinned to disk."""
        from repro.core.system import AcceleratedRealigner, SystemConfig
        from repro.genomics.simulate import SimulationProfile, simulate_sample

        params = golden["params"]
        sample = simulate_sample(
            {params["contig"]: params["length"]},
            profile=SimulationProfile(
                coverage=params["coverage"],
                indel_rate=params["indel_rate"],
            ),
            seed=params["seed"],
        )
        realigner = AcceleratedRealigner(sample.reference,
                                         SystemConfig.iracc())
        updated, _run, _report = realigner.realign(sample.reads)
        for index, (read, want) in enumerate(zip(updated, golden["reads"])):
            got = {
                "name": read.name,
                "pos": read.pos,
                "cigar": str(read.cigar) if read.cigar is not None else None,
            }
            assert got == want, (
                f"accelerated read #{index} ({want['name']}) diverged "
                f"from the golden software output: expected "
                f"pos={want['pos']} cigar={want['cigar']}, got "
                f"pos={got['pos']} cigar={got['cigar']}. {REGEN_HINT}"
            )


class TestEngineMatchesGolden:
    """The execution engine must land every read where the pinned golden
    does -- serial, batched, and multiprocess are one behaviour."""

    @pytest.fixture(scope="class")
    def golden(self):
        return _load("realigned_sam.json")

    @pytest.fixture(scope="class")
    def sample(self, golden):
        from repro.genomics.simulate import SimulationProfile, simulate_sample

        params = golden["params"]
        return simulate_sample(
            {params["contig"]: params["length"]},
            profile=SimulationProfile(
                coverage=params["coverage"],
                indel_rate=params["indel_rate"],
            ),
            seed=params["seed"],
        )

    def _assert_matches(self, updated, golden, label):
        for index, (read, want) in enumerate(zip(updated, golden["reads"])):
            got = {
                "name": read.name,
                "pos": read.pos,
                "cigar": str(read.cigar) if read.cigar is not None else None,
            }
            assert got == want, (
                f"{label} read #{index} ({want['name']}) diverged from "
                f"the golden: expected pos={want['pos']} "
                f"cigar={want['cigar']}, got pos={got['pos']} "
                f"cigar={got['cigar']}. {REGEN_HINT}"
            )

    @pytest.mark.parametrize(
        "label,workers",
        [("engine-batched", 1), ("engine-multiprocess", 3)],
    )
    def test_engine_realigner_matches_golden(self, golden, sample,
                                             label, workers):
        from repro.engine import EngineConfig
        from repro.realign.realigner import IndelRealigner

        realigner = IndelRealigner(
            sample.reference,
            engine=EngineConfig(workers=workers, batch=3),
        )
        updated, _report = realigner.realign(sample.reads)
        self._assert_matches(updated, golden, label)

    @pytest.mark.parametrize("plane", ["barrier", "stream", "shard"])
    @pytest.mark.parametrize(
        "kernel", ["auto", "scalar", "vector", "fft", "bitpack", "native"]
    )
    def test_every_kernel_matches_golden_in_every_plane(
        self, golden, sample, kernel, plane
    ):
        """All five kernels (and auto) must land every read where the
        golden does, through the barrier, streaming, and shard planes
        alike -- the dispatch layer is only allowed to change *when*
        results arrive, never what they are. ``native`` runs here with
        or without a compiled backend: its fallback path is exact too.
        The shard row realigns twice through one content-addressed
        cache: a cold pass (every site computed, inserted) and a warm
        pass (every site served from the cache) must both match the
        golden -- serial == barrier == stream == shard, cold or warm."""
        from repro.engine import EngineConfig, StreamingEngine
        from repro.realign.realigner import IndelRealigner

        config = EngineConfig(workers=2, batch=3, kernel=kernel)
        if plane == "stream":
            engine = StreamingEngine(config)
        elif plane == "shard":
            from repro.shard import ShardPlane, SiteResultCache

            engine = ShardPlane(config, shards=2,
                                cache=SiteResultCache.from_megabytes(64))
        else:
            engine = config
        realigner = IndelRealigner(sample.reference, engine=engine)
        try:
            updated, _report = realigner.realign(sample.reads)
            if plane == "shard":
                warm, _report = realigner.realign(sample.reads)
                assert engine.cache.hits > 0, (
                    "second shard-plane pass should have served sites "
                    "from the content-addressed cache"
                )
                self._assert_matches(warm, golden, f"{kernel}-shard-warm")
        finally:
            if plane != "barrier":
                engine.close()
        self._assert_matches(updated, golden, f"{kernel}-{plane}")

    def test_batched_kernel_reproduces_golden_grids(self):
        """min_whd_grid_batched(prefilter=False) must be cell-identical
        to the grids the scalar kernel wrote into the site golden."""
        from repro.engine import min_whd_grid_batched
        from repro.workloads.generator import BENCH_PROFILE, synthesize_site

        golden = _load("site_results.json")
        rng = np.random.default_rng(golden["seed"])
        for want in golden["sites"]:
            site = synthesize_site(rng, BENCH_PROFILE,
                                   complexity=want["complexity"])
            mw, mi = min_whd_grid_batched(site, prefilter=False)
            assert mw.tolist() == want["min_whd"], (
                f"batched kernel min_whd drifted from golden on site "
                f"{want['site']}. {REGEN_HINT}"
            )
            assert mi.tolist() == want["min_whd_idx"], (
                f"batched kernel min_whd_idx drifted from golden on site "
                f"{want['site']}. {REGEN_HINT}"
            )

    def test_bitpack_kernel_reproduces_golden_grids(self):
        """min_whd_grid_bitpacked must be cell-identical to the grids
        the scalar kernel wrote into the site golden."""
        from repro.engine import min_whd_grid_bitpacked
        from repro.workloads.generator import BENCH_PROFILE, synthesize_site

        golden = _load("site_results.json")
        rng = np.random.default_rng(golden["seed"])
        for want in golden["sites"]:
            site = synthesize_site(rng, BENCH_PROFILE,
                                   complexity=want["complexity"])
            mw, mi = min_whd_grid_bitpacked(site)
            assert mw.tolist() == want["min_whd"], (
                f"bitpack kernel min_whd drifted from golden on site "
                f"{want['site']}. {REGEN_HINT}"
            )
            assert mi.tolist() == want["min_whd_idx"], (
                f"bitpack kernel min_whd_idx drifted from golden on site "
                f"{want['site']}. {REGEN_HINT}"
            )

    def test_prefiltered_engine_reproduces_golden_decisions(self):
        """With the prefilter on, grids may hold sentinels but every
        architecturally visible decision must still match the golden."""
        from repro.engine import realign_site_batched
        from repro.workloads.generator import BENCH_PROFILE, synthesize_site

        golden = _load("site_results.json")
        rng = np.random.default_rng(golden["seed"])
        for want in golden["sites"]:
            site = synthesize_site(rng, BENCH_PROFILE,
                                   complexity=want["complexity"])
            result = realign_site_batched(site)
            assert int(result.best_cons) == want["best_cons"], (
                f"prefiltered engine best_cons drifted on site "
                f"{want['site']}. {REGEN_HINT}"
            )
            assert result.realign.tolist() == want["realign"]
            assert result.new_pos.tolist() == want["new_pos"]


class TestEvaluationGoldens:
    """The accuracy scenarios' EvaluationReports, pinned end to end.

    These recompute the full before/after scorecard -- mismatch totals,
    truth concordance, truth-INDEL precision/recall, per-site deltas,
    cohort trajectories -- and compare every field against the committed
    JSON. Unlike the SAM goldens, a drift here names the *outcome* that
    changed, so an accuracy regression reads as one."""

    SCENARIOS = ("toy", "cohort", "adversarial")

    @pytest.fixture(scope="class", params=SCENARIOS)
    def pair(self, request):
        scenario = request.param
        return (scenario, evaluation_golden(scenario),
                _load(f"evaluation_{scenario}.json"))

    def test_report_matches_golden(self, pair):
        scenario, recomputed, golden = pair
        assert recomputed.keys() == golden.keys(), (
            f"evaluation[{scenario}] report shape drifted: golden keys "
            f"{sorted(golden)}, got {sorted(recomputed)}. {REGEN_HINT}"
        )
        for key in golden:
            assert recomputed[key] == golden[key], (
                f"evaluation[{scenario}].{key} drifted from the golden. "
                f"{REGEN_HINT}"
            )

    def test_golden_itself_proves_realignment_helped(self, pair):
        """The committed artifact must prove the point itself: strictly
        fewer mismatches, no concordance regression, on every scenario."""
        scenario, _recomputed, golden = pair
        totals = golden["totals"]
        assert totals["mismatch_after"] < totals["mismatch_before"], (
            f"evaluation[{scenario}] golden does not show a mismatch "
            f"improvement -- the scenario no longer exercises realignment"
        )
        assert totals["concordance_after"] >= totals["concordance_before"]
        assert totals["reads_moved"] > 0


class TestSiteResultGolden:
    @pytest.fixture(scope="class")
    def recomputed(self):
        return site_results_golden()

    @pytest.fixture(scope="class")
    def golden(self):
        return _load("site_results.json")

    def test_parameters_match_golden(self, golden):
        assert golden["seed"] == SITE_SEED
        assert [e["complexity"] for e in golden["sites"]] == list(
            SITE_COMPLEXITIES
        )

    def test_every_grid_cell(self, recomputed, golden):
        assert len(recomputed["sites"]) == len(golden["sites"])
        for got, want in zip(recomputed["sites"], golden["sites"]):
            label = (f"site {want['site']} "
                     f"(complexity {want['complexity']})")
            for key in ("num_consensuses", "num_reads", "best_cons"):
                assert got[key] == want[key], (
                    f"{label}: {key} drifted, expected {want[key]}, got "
                    f"{got[key]}. {REGEN_HINT}"
                )
            for key in ("scores", "realign", "new_pos"):
                assert got[key] == want[key], (
                    f"{label}: {key} drifted. expected {want[key]}, got "
                    f"{got[key]}. {REGEN_HINT}"
                )
            for key in ("min_whd", "min_whd_idx"):
                got_grid = np.asarray(got[key])
                want_grid = np.asarray(want[key])
                if not np.array_equal(got_grid, want_grid):
                    bad = np.argwhere(got_grid != want_grid)[0]
                    c, r = int(bad[0]), int(bad[1])
                    pytest.fail(
                        f"{label}: {key}[{c}, {r}] drifted: expected "
                        f"{want_grid[c, r]}, got {got_grid[c, r]}. "
                        f"{REGEN_HINT}"
                    )

    def test_scalar_kernel_reproduces_golden_grids(self, golden):
        """The scalar (hardware-shaped) kernel must hit the same grids
        the vectorized kernel wrote into the golden."""
        from repro.realign.whd import realign_site
        from repro.workloads.generator import BENCH_PROFILE, synthesize_site

        rng = np.random.default_rng(golden["seed"])
        for want in golden["sites"]:
            site = synthesize_site(rng, BENCH_PROFILE,
                                   complexity=want["complexity"])
            result = realign_site(site, vectorized=False)
            assert result.min_whd.tolist() == want["min_whd"], (
                f"scalar kernel min_whd drifted from golden on site "
                f"{want['site']}. {REGEN_HINT}"
            )
            assert int(result.best_cons) == want["best_cons"]
            assert result.new_pos.tolist() == want["new_pos"]
