"""Unit and property tests for fleet planning."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.perf.fleet import (
    FleetJob,
    diagnostic_turnaround,
    fleet_size_for_deadline,
    plan_fleet,
)
from repro.perf.instances import F1_2XLARGE

jobs_strategy = st.lists(
    st.floats(min_value=1.0, max_value=5_000.0), min_size=1, max_size=30
).map(lambda xs: [FleetJob(f"job{i}", s) for i, s in enumerate(xs)])


class TestPlanFleet:
    def test_single_instance_serializes(self):
        jobs = [FleetJob("a", 10), FleetJob("b", 20)]
        plan = plan_fleet(jobs, 1)
        assert plan.makespan_seconds == 30
        assert plan.utilization == 1.0

    def test_lpt_placement(self):
        jobs = [FleetJob(str(i), s) for i, s in enumerate([9, 7, 6, 5, 5])]
        plan = plan_fleet(jobs, 2)
        # LPT: 9 | 7, then 6 -> lighter, 5 -> lighter, 5 -> lighter.
        assert plan.makespan_seconds == 18
        # Within the greedy bound of the optimum (16 here).
        assert plan.makespan_seconds <= 16 * (4 / 3)

    def test_cost_is_busy_time(self):
        jobs = [FleetJob("a", 3600), FleetJob("b", 3600)]
        plan = plan_fleet(jobs, 2)
        assert plan.cost_dollars == pytest.approx(2 * F1_2XLARGE.price_per_hour)

    def test_validation(self):
        with pytest.raises(ValueError):
            plan_fleet([], 0)
        with pytest.raises(ValueError):
            FleetJob("bad", -1)

    @given(jobs_strategy, st.integers(1, 8))
    @settings(max_examples=40, deadline=None)
    def test_invariants(self, jobs, fleet):
        plan = plan_fleet(jobs, fleet)
        placed = [job for queue in plan.assignments.values() for job in queue]
        assert sorted(j.name for j in placed) == sorted(j.name for j in jobs)
        total = sum(j.seconds for j in jobs)
        longest = max(j.seconds for j in jobs)
        assert plan.makespan_seconds >= max(total / fleet, longest) - 1e-6
        assert plan.makespan_seconds <= total + 1e-6
        # The greedy list-scheduling bound: makespan <= mean load + longest.
        assert plan.makespan_seconds <= total / fleet + longest + 1e-6
        assert 0.0 < plan.utilization <= 1.0


class TestDeadlinePlanning:
    def test_finds_minimal_fleet(self):
        jobs = [FleetJob(str(i), 100) for i in range(10)]
        plan = fleet_size_for_deadline(jobs, 250)
        assert plan is not None
        # 4 instances give a 300 s LPT makespan; 5 meet the deadline.
        assert plan.num_instances == 5
        assert plan.makespan_seconds <= 250
        assert fleet_size_for_deadline(jobs, 200).num_instances == 5

    def test_impossible_deadline(self):
        jobs = [FleetJob("big", 1_000)]
        assert fleet_size_for_deadline(jobs, 500) is None

    def test_validation(self):
        with pytest.raises(ValueError):
            fleet_size_for_deadline([], 0)

    def test_diagnostic_turnaround(self):
        plan = diagnostic_turnaround({"1": 120.0, "2": 110.0, "21": 20.0}, 2)
        assert plan.makespan_seconds == 130  # 120+...: LPT -> 120|110+20
        assert plan.num_instances == 2
