"""Unit tests for the ASCII pileup renderer and the appendix experiment."""

import numpy as np
import pytest

from repro.experiments import appendix
from repro.genomics.cigar import Cigar
from repro.genomics.pileup_view import PileupViewConfig, render_pileup
from repro.genomics.read import Read
from repro.genomics.reference import Contig, ReferenceGenome


@pytest.fixture
def reference():
    return ReferenceGenome([Contig("1", "ACGTACGTACGTACGTACGT")])


def make_read(name, pos, seq, cigar, reverse=False):
    return Read(name, "1", pos, seq, np.full(len(seq), 30, np.uint8),
                Cigar.parse(cigar), is_reverse=reverse)


class TestRenderPileup:
    def test_matching_read_renders_dots(self, reference):
        read = make_read("r", 4, "ACGT", "4M")
        art = render_pileup([read], reference, "1", 0, 12)
        lines = art.splitlines()
        assert lines[1] == "ACGTACGTACGT"
        assert lines[2] == "    ....    "

    def test_reverse_strand_renders_commas(self, reference):
        read = make_read("r", 4, "ACGT", "4M", reverse=True)
        art = render_pileup([read], reference, "1", 0, 12)
        assert ",,,," in art.splitlines()[2]

    def test_mismatch_shows_base(self, reference):
        read = make_read("r", 0, "ATGT", "4M")
        art = render_pileup([read], reference, "1", 0, 8)
        assert art.splitlines()[2].startswith(".T..")

    def test_deletion_renders_stars(self, reference):
        read = make_read("r", 0, "ACAC", "2M2D2M")
        art = render_pileup([read], reference, "1", 0, 8)
        assert art.splitlines()[2].startswith("..**..")

    def test_insertion_flag(self, reference):
        read = make_read("r", 0, "ACTTGT", "2M2I2M")
        art = render_pileup([read], reference, "1", 0, 8)
        assert "+" in art.splitlines()[2]

    def test_row_cap(self, reference):
        reads = [make_read(f"r{i}", 0, "ACGT", "4M") for i in range(10)]
        art = render_pileup(reads, reference, "1", 0, 8,
                            PileupViewConfig(max_rows=3))
        assert "more reads" in art

    def test_window_validation(self, reference):
        with pytest.raises(ValueError):
            render_pileup([], reference, "1", 10, 5)

    def test_names_column(self, reference):
        read = make_read("myread", 0, "ACGT", "4M")
        art = render_pileup([read], reference, "1", 0, 8,
                            PileupViewConfig(show_names=True))
        assert "myread" in art


class TestAppendixExperiment:
    def test_membership_and_cleanup(self):
        outcome = appendix.run()
        assert outcome.anchored_reads == outcome.spanning_reads
        assert outcome.reads_realigned > 0
        # Misaligned reads show mismatch letters before, none after.
        before_body = "\n".join(outcome.before.splitlines()[2:])
        after_body = "\n".join(outcome.after.splitlines()[2:])
        assert any(c in "ACGT" for c in before_body)
        assert not any(c in "ACGT" for c in after_body)

    def test_glossary_covers_paper_terms(self):
        terms = {term for term, _impl in appendix.GLOSSARY}
        for expected in ("genomic read", "quality score", "consensus",
                         "IR target / site"):
            assert expected in terms
