"""Unit tests for the energy model and workload traces."""

import io
import json

import numpy as np
import pytest

from repro.core.accelerator import IRUnit, UnitConfig
from repro.perf.energy import (
    EnergyReport,
    accelerated_energy,
    energy_efficiency,
    software_energy,
)
from repro.perf.model import GATK3_WHOLE_GENOME_SECONDS
from repro.workloads.generator import BENCH_PROFILE, synthesize_site
from repro.workloads.trace import (
    TraceError,
    WorkloadTrace,
    load_trace,
    save_trace,
)


class TestEnergy:
    def test_joules_arithmetic(self):
        report = EnergyReport("x", seconds=100, average_watts=50)
        assert report.joules == 5_000
        assert report.watt_hours == pytest.approx(5_000 / 3600)

    def test_validation(self):
        with pytest.raises(ValueError):
            EnergyReport("x", seconds=-1, average_watts=10)
        with pytest.raises(ValueError):
            EnergyReport("x", seconds=1, average_watts=0)

    def test_whole_genome_efficiency(self):
        """81x speedup at lower power: >100x energy efficiency."""
        gatk3 = software_energy("GATK3", GATK3_WHOLE_GENOME_SECONDS)
        iracc = accelerated_energy(GATK3_WHOLE_GENOME_SECONDS / 81.0)
        ratio = energy_efficiency(gatk3, iracc)
        assert ratio > 100
        assert iracc.average_watts < gatk3.average_watts


class TestTrace:
    @pytest.fixture
    def sites(self):
        rng = np.random.default_rng(14)
        return [synthesize_site(rng, BENCH_PROFILE, complexity=0.4)
                for _ in range(4)]

    def test_roundtrip_preserves_sites(self, sites, tmp_path):
        trace = WorkloadTrace(sites=sites, description="test", seed=14)
        path = tmp_path / "workload.json"
        save_trace(trace, path)
        loaded = load_trace(path)
        assert loaded.description == "test"
        assert loaded.seed == 14
        assert len(loaded.sites) == len(sites)
        for original, replayed in zip(sites, loaded.sites):
            assert replayed.consensuses == original.consensuses
            assert replayed.reads == original.reads
            for a, b in zip(replayed.quals, original.quals):
                assert np.array_equal(a, b)

    def test_replay_reproduces_kernel_bit_for_bit(self, sites, tmp_path):
        path = tmp_path / "workload.json"
        save_trace(WorkloadTrace(sites=sites), path)
        loaded = load_trace(path)
        unit = IRUnit(UnitConfig(lanes=32))
        for original, replayed in zip(sites, loaded.sites):
            a = unit.run_site(original)
            b = unit.run_site(replayed)
            assert a.cycles == b.cycles
            assert np.array_equal(a.new_pos, b.new_pos)

    def test_version_check(self, sites):
        buffer = io.StringIO()
        save_trace(WorkloadTrace(sites=sites), buffer)
        document = json.loads(buffer.getvalue())
        document["version"] = 99
        with pytest.raises(TraceError, match="version"):
            load_trace(io.StringIO(json.dumps(document)))

    def test_count_mismatch_detected(self, sites):
        buffer = io.StringIO()
        save_trace(WorkloadTrace(sites=sites), buffer)
        document = json.loads(buffer.getvalue())
        document["sites"].pop()
        with pytest.raises(TraceError, match="claims"):
            load_trace(io.StringIO(json.dumps(document)))

    def test_missing_field_detected(self):
        document = {"version": 1, "num_sites": 1,
                    "sites": [{"chrom": "1"}]}
        with pytest.raises(TraceError):
            load_trace(io.StringIO(json.dumps(document)))

    def test_work_summary(self, sites):
        trace = WorkloadTrace(sites=sites)
        assert trace.total_unpruned_comparisons() == sum(
            site.unpruned_comparisons() for site in sites
        )
