"""Unit tests for repro.realign.site."""

import numpy as np
import pytest

from repro.realign.site import (
    PAPER_LIMITS,
    RealignmentSite,
    SiteError,
    SiteLimits,
)


def make_site(consensuses=("ACGTACGT", "ACGTTACGT"), reads=("ACGT",),
              quals=None, **kwargs):
    if quals is None:
        quals = tuple(np.full(len(r), 30, np.uint8) for r in reads)
    return RealignmentSite(
        chrom="22", start=1000, consensuses=tuple(consensuses),
        reads=tuple(reads), quals=quals, **kwargs,
    )


class TestLimits:
    def test_paper_defaults(self):
        assert PAPER_LIMITS.max_consensuses == 32
        assert PAPER_LIMITS.max_consensus_length == 2048
        assert PAPER_LIMITS.max_reads == 256
        assert PAPER_LIMITS.max_read_length == 256

    def test_positive_required(self):
        with pytest.raises(ValueError):
            SiteLimits(max_consensuses=0)


class TestValidation:
    def test_valid_site(self):
        site = make_site()
        assert site.num_consensuses == 2
        assert site.num_reads == 1
        assert site.reference == "ACGTACGT"

    def test_needs_reference_consensus(self):
        with pytest.raises(SiteError):
            make_site(consensuses=())

    def test_needs_reads(self):
        with pytest.raises(SiteError):
            make_site(reads=(), quals=())

    def test_too_many_consensuses(self):
        limits = SiteLimits(max_consensuses=2)
        with pytest.raises(SiteError, match="exceed"):
            make_site(consensuses=("ACGTACGT",) * 3, limits=limits)

    def test_too_many_reads(self):
        limits = SiteLimits(max_reads=1)
        with pytest.raises(SiteError):
            make_site(reads=("ACGT", "ACGT"),
                      quals=(np.full(4, 1, np.uint8),) * 2, limits=limits)

    def test_read_longer_than_consensus(self):
        with pytest.raises(SiteError, match="shorter than the longest"):
            make_site(consensuses=("ACG",), reads=("ACGT",))

    def test_quality_length_mismatch(self):
        with pytest.raises(SiteError):
            make_site(quals=(np.full(3, 1, np.uint8),))

    def test_consensus_over_length_limit(self):
        limits = SiteLimits(max_consensus_length=4)
        with pytest.raises(SiteError):
            make_site(consensuses=("ACGTA",), reads=("AC",),
                      quals=(np.full(2, 1, np.uint8),), limits=limits)


class TestWorkArithmetic:
    def test_offsets(self):
        site = make_site()
        assert site.offsets(0, 0) == 8 - 4 + 1
        assert site.offsets(1, 0) == 9 - 4 + 1

    def test_unpruned_comparisons(self):
        site = make_site()
        # (5 offsets + 6 offsets) * 4 bases
        assert site.unpruned_comparisons() == (5 + 6) * 4

    def test_io_bytes(self):
        site = make_site()
        assert site.input_bytes() == (8 + 9) + 2 * 4
        assert site.output_bytes() == 5

    def test_paper_worst_case_comparison_count(self):
        """Section II-C: "an astonishing worst case of 3,684,352,000
        comparisons for just calculating the whds for one IR target".

        The paper's figure corresponds to C=32, R=256, m=2048 and
        n=250 -- the Illumina read length, not the 256-byte buffer cap:
        32 * 256 * (2048 - 250 + 1) * 250 = 3,684,352,000."""
        site = make_site(
            consensuses=("A" * 2048,) * 32,
            reads=("A" * 250,) * 256,
            quals=(np.full(250, 30, np.uint8),) * 256,
        )
        assert site.unpruned_comparisons() == 3_684_352_000

    def test_consensus_arrays(self):
        arrays = make_site().consensus_arrays()
        assert arrays[0].tolist() == [65, 67, 71, 84, 65, 67, 71, 84]
