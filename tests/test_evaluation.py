"""Accuracy-evaluation harness tests: outcomes, not byte-identity.

Covers the left-normalized INDEL matcher (the ambiguous-anchor cases
that used to double-count equivalent edits), the mismatch/concordance
counters, the report structures, the per-scenario accuracy gate
(realignment must *help*, with pinned truth-INDEL F1 floors), the
cross-kernel/engine accuracy matrix (every execution path produces the
same scorecard), and chaos composition (injected worker faults change
nothing about the scores).
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.engine import Engine, EngineConfig, StreamingEngine
from repro.genomics.cigar import Cigar
from repro.genomics.read import Read
from repro.genomics.reference import ReferenceGenome
from repro.genomics.simulate import TruthPlacement
from repro.genomics.variants import Variant, VariantKind
from repro.evaluate import (
    DEFAULT_SEEDS,
    IndelRecovery,
    SCENARIO_NAMES,
    build_scenario,
    mismatch_totals,
    read_mismatches,
    run_scenario,
    truth_concordance,
)
from repro.evaluate.report import TrajectoryOutcome
from repro.resilience.workers import WorkerRecovery
from repro.variants.caller import VariantCall
from repro.variants.evaluation import (
    evaluate_calls,
    left_normalize,
)


def _call(chrom, pos, ref, alt):
    return VariantCall(chrom=chrom, pos=pos, ref=ref, alt=alt,
                       quality=50.0, depth=30, alt_count=15)


def _read(name, chrom, pos, seq, cigar):
    return Read(name=name, chrom=chrom, pos=pos, seq=seq,
                quals=np.full(len(seq), 30, dtype=np.uint8),
                cigar=Cigar.parse(cigar))


class TestLeftNormalize:
    """VCF-canonical normalization collapses equivalent INDELs."""

    #            0123456789012345
    REFERENCE = ReferenceGenome.from_dict({"chr1": "GCAAAAATCGTACGTC"})

    def test_homopolymer_deletion_any_anchor_normalizes_identically(self):
        # Deleting any single A from the AAAAA run (positions 2-6) is
        # the same edit; every anchor must normalize to the leftmost.
        canonical = left_normalize("chr1", 1, "CA", "C", self.REFERENCE)
        for anchor in range(2, 7):
            ref = self.REFERENCE.fetch("chr1", anchor - 1, anchor + 1)
            triple = left_normalize("chr1", anchor - 1, ref, ref[0],
                                    self.REFERENCE)
            assert triple == canonical, (
                f"anchor {anchor}: {triple} != canonical {canonical}"
            )
        assert canonical == (1, "CA", "C")

    def test_homopolymer_insertion_any_anchor_normalizes_identically(self):
        canonical = left_normalize("chr1", 1, "C", "CA", self.REFERENCE)
        # An extra A described mid-run ("AA"->"AAA" style anchors).
        assert left_normalize("chr1", 3, "A", "AA",
                              self.REFERENCE) == canonical
        assert left_normalize("chr1", 6, "A", "AA",
                              self.REFERENCE) == canonical
        assert canonical == (1, "C", "CA")

    def test_snp_is_returned_unchanged(self):
        assert left_normalize("chr1", 7, "T", "G",
                              self.REFERENCE) == (7, "T", "G")

    def test_non_ambiguous_indel_only_trims_padding(self):
        # TCG -> T deletion right after the homopolymer: no repeat to
        # slide through, the triple is already canonical.
        assert left_normalize("chr1", 6, "ATC", "A",
                              self.REFERENCE) == (6, "ATC", "A")

    def test_shared_leading_bases_are_trimmed(self):
        # Redundantly padded representation of the same TCG->T deletion.
        assert left_normalize("chr1", 5, "AATCG", "AAG",
                              self.REFERENCE) == (6, "ATC", "A")

    def test_dinucleotide_repeat_deletion(self):
        reference = ReferenceGenome.from_dict({"chrR": "TTACACACACGG"})
        canonical = left_normalize("chrR", 1, "TAC", "T", reference)
        # The same two-base deletion anchored one repeat unit later.
        assert left_normalize("chrR", 3, "CAC", "C", reference) == canonical
        assert left_normalize("chrR", 5, "CAC", "C", reference) == canonical


class TestIndelMatching:
    REFERENCE = ReferenceGenome.from_dict({"chr1": "GCAAAAATCGTACGTC"})

    def test_shifted_anchor_matches_with_reference(self):
        truth = [Variant("chr1", 1, "CA", "C")]
        calls = [_call("chr1", 4, "AA", "A")]  # same edit, mid-run anchor
        result = evaluate_calls(calls, truth, reference=self.REFERENCE)
        assert len(result.true_positives) == 1
        assert not result.false_positives
        assert not result.false_negatives

    def test_different_length_indel_does_not_match(self):
        truth = [Variant("chr1", 1, "CAA", "C")]  # 2-base deletion
        calls = [_call("chr1", 1, "CA", "C")]     # 1-base deletion
        result = evaluate_calls(calls, truth, reference=self.REFERENCE)
        assert not result.true_positives
        assert len(result.false_positives) == 1
        assert len(result.false_negatives) == 1

    def test_insertion_never_matches_deletion(self):
        truth = [Variant("chr1", 2, "A", "AA")]
        calls = [_call("chr1", 2, "AA", "A")]
        result = evaluate_calls(calls, truth, reference=self.REFERENCE)
        assert not result.true_positives

    def test_without_reference_falls_back_to_tolerance(self):
        truth = [Variant("chr1", 1, "CA", "C")]
        near = evaluate_calls([_call("chr1", 9, "GT", "G")], truth)
        far = evaluate_calls([_call("chr1", 100, "GT", "G")], truth)
        assert len(near.true_positives) == 1
        assert not far.true_positives

    def test_unknown_contig_falls_back_to_tolerance(self):
        truth = [Variant("chrZ", 5, "CA", "C")]
        calls = [_call("chrZ", 8, "TA", "T")]
        result = evaluate_calls(calls, truth, reference=self.REFERENCE)
        assert len(result.true_positives) == 1

    def test_snp_requires_exact_position_and_allele(self):
        truth = [Variant("chr1", 7, "T", "G")]
        assert evaluate_calls([_call("chr1", 7, "T", "G")],
                              truth).true_positives
        assert not evaluate_calls([_call("chr1", 8, "C", "G")],
                                  truth).true_positives
        assert not evaluate_calls([_call("chr1", 7, "T", "A")],
                                  truth).true_positives


class TestMismatchCounters:
    #                                        0123456789
    REFERENCE = ReferenceGenome.from_dict({"chrM": "ACGTACGTAC"})

    def test_perfect_read_has_zero_mismatches(self):
        read = _read("r0", "chrM", 2, "GTACG", "5M")
        assert read_mismatches(read, self.REFERENCE) == (0, 5)

    def test_substituted_bases_are_counted(self):
        read = _read("r1", "chrM", 2, "GTTCG", "5M")  # A->T at offset 2
        assert read_mismatches(read, self.REFERENCE) == (1, 5)

    def test_insertion_splits_aligned_span(self):
        # 3M2I3M at pos 0: ACG + TT + TAC; M bases all agree.
        read = _read("r2", "chrM", 0, "ACGTTTAC", "3M2I3M")
        assert read_mismatches(read, self.REFERENCE) == (0, 6)

    def test_deletion_advances_reference(self):
        # 3M2D3M at pos 0: ACG then skip TA then CGT.
        read = _read("r3", "chrM", 0, "ACGCGT", "3M2D3M")
        assert read_mismatches(read, self.REFERENCE) == (0, 6)

    def test_unmapped_read_contributes_nothing(self):
        unmapped = Read(name="u", chrom=None, pos=0, seq="ACGT",
                        quals=np.full(4, 30, dtype=np.uint8), cigar=None)
        assert read_mismatches(unmapped, self.REFERENCE) == (0, 0)

    def test_totals_sum_over_reads(self):
        reads = [
            _read("r0", "chrM", 2, "GTACG", "5M"),
            _read("r1", "chrM", 2, "GTTCG", "5M"),
        ]
        assert mismatch_totals(reads, self.REFERENCE) == (1, 10)


class TestTruthConcordance:
    def test_read_at_truth_placement_is_fully_concordant(self):
        read = _read("r0", "chrM", 3, "TACGT", "5M")
        placements = {"r0": TruthPlacement(pos=3, cigar="5M")}
        assert truth_concordance([read], placements) == (5, 5)

    def test_shifted_read_is_discordant(self):
        read = _read("r0", "chrM", 5, "TACGT", "5M")
        placements = {"r0": TruthPlacement(pos=3, cigar="5M")}
        assert truth_concordance([read], placements) == (0, 5)

    def test_gapped_truth_vs_gapfree_alignment_partial(self):
        # Truth: 3M2D2M at pos 0 (read bases map to ref 0,1,2,5,6).
        # Current alignment: 5M at pos 0 (bases map to 0,1,2,3,4).
        # Only the first three bases agree.
        read = _read("r0", "chrM", 0, "ACGTA", "5M")
        placements = {"r0": TruthPlacement(pos=0, cigar="3M2D2M")}
        assert truth_concordance([read], placements) == (3, 5)

    def test_reads_without_placements_are_skipped(self):
        read = _read("orphan", "chrM", 0, "ACGTA", "5M")
        assert truth_concordance([read], {}) == (0, 0)


class TestReportStructures:
    def test_indel_recovery_math(self):
        recovery = IndelRecovery(tp=8, fp=2, fn=2)
        assert recovery.precision == 0.8
        assert recovery.recall == 0.8
        assert recovery.f1 == pytest.approx(0.8)

    def test_indel_recovery_zero_denominators(self):
        empty = IndelRecovery(tp=0, fp=0, fn=0)
        assert empty.precision == 0.0
        assert empty.recall == 0.0
        assert empty.f1 == 0.0

    def test_trajectory_error_is_mean_absolute(self):
        outcome = TrajectoryOutcome(
            chrom="c", pos=1, kind="DEL", length_change=-1,
            truth=(0.4, 0.6, 0.8),
            before=(0.2, 0.3, 0.4),
            after=(0.4, 0.5, 0.8),
        )
        assert outcome.error_before == pytest.approx(0.3)
        assert outcome.error_after == pytest.approx(0.1 / 3, abs=1e-6)

    def test_report_json_is_deterministic_and_sorted(self):
        report = run_scenario("toy")
        text = report.to_json()
        payload = json.loads(text)
        assert payload["scenario"] == "toy"
        assert payload["seed"] == DEFAULT_SEEDS["toy"]
        assert text == json.dumps(payload, indent=1, sort_keys=True)

    def test_summary_mentions_scenario_and_movement(self):
        report = run_scenario("toy")
        line = report.summary()
        assert "evaluate[toy]" in line
        assert "moved" in line
        assert "F1" in line


#: Minimum acceptable post-realignment truth-INDEL F1 per scenario,
#: pinned under the measured per-sample values (toy 0.93; cohort 0.82
#: at t0, whose rising trajectory starts at low allele fractions;
#: adversarial 0.84) so only a real regression trips them -- the runs
#: are fully deterministic, so no flake margin is needed.
F1_FLOORS = {"toy": 0.90, "cohort": 0.80, "adversarial": 0.80}


@pytest.fixture(scope="module")
def reports():
    """One serial-auto report per scenario, shared across gate tests."""
    return {name: run_scenario(name) for name in SCENARIO_NAMES}


class TestAccuracyGate:
    """Realignment must improve outcomes on every truth-bearing scenario."""

    @pytest.mark.parametrize("scenario", SCENARIO_NAMES)
    def test_mismatches_strictly_drop(self, reports, scenario):
        totals = reports[scenario].totals()
        assert totals["mismatch_after"] < totals["mismatch_before"], (
            f"{scenario}: realignment did not reduce mismatch totals"
        )
        assert totals["reads_moved"] > 0

    @pytest.mark.parametrize("scenario", SCENARIO_NAMES)
    def test_concordance_does_not_regress(self, reports, scenario):
        totals = reports[scenario].totals()
        assert totals["concordance_after"] >= totals["concordance_before"]
        for sample in reports[scenario].samples:
            assert sample.concordance_after >= sample.concordance_before, (
                f"{scenario}/{sample.sample}: concordance regressed"
            )

    @pytest.mark.parametrize("scenario", SCENARIO_NAMES)
    def test_truth_indel_f1_floor(self, reports, scenario):
        for sample in reports[scenario].samples:
            assert sample.indel_after.f1 >= F1_FLOORS[scenario], (
                f"{scenario}/{sample.sample}: post-IR truth-INDEL F1 "
                f"{sample.indel_after.f1} under floor {F1_FLOORS[scenario]}"
            )
            assert sample.indel_after.f1 >= sample.indel_before.f1

    @pytest.mark.parametrize("scenario", ("toy", "cohort"))
    def test_every_clean_site_with_movement_improves(self, reports,
                                                     scenario):
        for sample in reports[scenario].samples:
            for site in sample.site_outcomes:
                if site.moved:
                    assert site.mismatch_after < site.mismatch_before, (
                        f"{scenario}/{sample.sample} site "
                        f"{site.chrom}:{site.start} moved {site.moved} "
                        f"reads without reducing mismatches"
                    )

    def test_adversarial_sites_improve_in_aggregate(self, reports):
        # Corrupted reads (chimeras, contaminants) can make an
        # individual site worse -- the WHD objective scores reads
        # against consensuses, not the reference -- but across all
        # realignment sites the mismatch mass must still drop.
        sites = [site for sample in reports["adversarial"].samples
                 for site in sample.site_outcomes if site.moved]
        assert sites
        before = sum(site.mismatch_before for site in sites)
        after = sum(site.mismatch_after for site in sites)
        assert after < before

    def test_cohort_trajectories_track_truth_more_closely(self, reports):
        trajectories = reports["cohort"].trajectories
        assert trajectories, "cohort scenario lost its INDEL trajectories"
        before = sum(t.error_before for t in trajectories)
        after = sum(t.error_after for t in trajectories)
        assert after <= before, (
            f"post-IR allele-frequency error {after} exceeds pre-IR "
            f"{before}"
        )

    def test_adversarial_scenario_reports_injected_counts(self, reports):
        injected = reports["adversarial"].injected
        for kind in ("contaminant", "chimera", "low_quality_tail",
                     "adapter"):
            assert injected.get(kind, 0) > 0, (
                f"adversarial scenario injected no {kind} reads -- the "
                f"workload no longer stresses that failure mode"
            )


class TestAccuracyMatrix:
    """Every kernel x engine combination emits the same scorecard.

    The byte-identity goldens pin read-level equality; this pins the
    derived *evaluation* -- if a dispatch path ever diverged, the drift
    would read as an accuracy delta, named by scenario and field.
    """

    KERNELS = ("auto", "scalar", "vector", "fft", "bitpack")

    @pytest.fixture(scope="class")
    def baseline(self, reports):
        return reports["toy"].to_dict()

    @pytest.mark.parametrize("kernel", KERNELS)
    def test_serial_kernels_match_baseline(self, baseline, kernel):
        report = run_scenario("toy", kernel=kernel)
        assert report.to_dict() == baseline, (
            f"serial kernel {kernel} produced a different evaluation"
        )

    @pytest.mark.parametrize("kernel", KERNELS)
    def test_barrier_engine_matches_baseline(self, baseline, kernel):
        config = EngineConfig(workers=2, batch=3, kernel=kernel)
        report = run_scenario("toy", engine=config)
        assert report.to_dict() == baseline, (
            f"barrier engine with kernel {kernel} produced a different "
            f"evaluation"
        )

    @pytest.mark.parametrize("kernel", KERNELS)
    def test_streaming_engine_matches_baseline(self, baseline, kernel):
        engine = StreamingEngine(
            EngineConfig(workers=2, batch=3, kernel=kernel)
        )
        try:
            report = run_scenario("toy", engine=engine)
        finally:
            engine.close()
        assert report.to_dict() == baseline, (
            f"streaming engine with kernel {kernel} produced a different "
            f"evaluation"
        )


class TestEvaluateCli:
    def test_emits_summary_and_report(self, tmp_path, capsys):
        from repro.__main__ import main as cli_main

        out = tmp_path / "report.json"
        assert cli_main([
            "evaluate", "--scenario", "toy", "--check",
            "--out", str(out),
        ]) == 0
        printed = capsys.readouterr().out
        assert "evaluate[toy]" in printed
        payload = json.loads(out.read_text())
        assert payload == run_scenario("toy").to_dict()

    def test_engine_flags_do_not_change_the_report(self, tmp_path):
        from repro.__main__ import main as cli_main

        serial = tmp_path / "serial.json"
        streamed = tmp_path / "streamed.json"
        assert cli_main(["evaluate", "--scenario", "toy",
                         "--out", str(serial)]) == 0
        assert cli_main(["evaluate", "--scenario", "toy", "--workers", "2",
                         "--stream", "--out", str(streamed)]) == 0
        assert serial.read_text() == streamed.read_text()

    def test_bad_flags_rejected(self, tmp_path, capsys):
        from repro.__main__ import main as cli_main

        assert cli_main(["evaluate", "--scenario", "toy",
                         "--workers", "0"]) == 2
        assert "--workers and --batch" in capsys.readouterr().err
        assert cli_main(["evaluate", "--scenario", "toy",
                         "--worker-fault-rate", "0.5"]) == 2
        assert "--workers >= 2" in capsys.readouterr().err


class TestChaosComposition:
    """Injected worker faults must not change a single score."""

    def test_barrier_engine_under_chaos_matches_baseline(self, reports):
        baseline = reports["toy"].to_dict()
        engine = Engine(
            EngineConfig(workers=2, batch=2),
            recovery=WorkerRecovery.chaos(97, 0.4),
        )
        try:
            report = run_scenario("toy", engine=engine)
        finally:
            engine.close()
        assert report.to_dict() == baseline

    def test_streaming_engine_under_chaos_matches_baseline(self, reports):
        baseline = reports["toy"].to_dict()
        engine = StreamingEngine(
            EngineConfig(workers=2, batch=2),
            recovery=WorkerRecovery.chaos(53, 0.4),
        )
        try:
            report = run_scenario("toy", engine=engine)
        finally:
            engine.close()
        assert report.to_dict() == baseline
