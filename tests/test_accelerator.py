"""Unit and property tests for the IR accelerator unit."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.accelerator import IRUnit, UnitConfig
from repro.realign.site import RealignmentSite
from repro.realign.whd import realign_site
from repro.workloads.generator import BENCH_PROFILE, synthesize_site


def small_site(seed=0):
    rng = np.random.default_rng(seed)
    profile = BENCH_PROFILE
    return synthesize_site(rng, profile, complexity=0.4)


class TestModes:
    @given(st.integers(0, 50), st.sampled_from([1, 32]), st.booleans())
    @settings(max_examples=12, deadline=None)
    def test_stepped_equals_analytic(self, seed, lanes, prune):
        site = small_site(seed)
        unit = IRUnit(UnitConfig(lanes=lanes, prune=prune))
        stepped = unit.run_site(site, mode="stepped")
        analytic = unit.run_site(site, mode="analytic")
        assert stepped.best_cons == analytic.best_cons
        assert np.array_equal(stepped.realign, analytic.realign)
        assert np.array_equal(stepped.new_pos, analytic.new_pos)
        assert stepped.cycles == analytic.cycles
        assert stepped.comparisons == analytic.comparisons

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            IRUnit().run_site(small_site(), mode="quantum")


class TestFunctionalEquivalence:
    @given(st.integers(0, 80), st.sampled_from([1, 8, 32]), st.booleans())
    @settings(max_examples=20, deadline=None)
    def test_matches_software_kernel(self, seed, lanes, prune):
        site = small_site(seed)
        unit = IRUnit(UnitConfig(lanes=lanes, prune=prune))
        hardware = unit.run_site(site)
        software = realign_site(site)
        assert hardware.matches(software)

    def test_figure4_site(self):
        site = RealignmentSite(
            chrom="22", start=10_000,
            consensuses=("CCTTAGA", "ACCTGAA", "TCTGCCT"),
            reads=("TGAA", "CCTC"),
            quals=(np.array([10, 20, 45, 10], np.uint8),
                   np.array([10, 60, 30, 20], np.uint8)),
        )
        result = IRUnit().run_site(site, mode="stepped")
        assert result.best_cons == 1
        assert result.realign.tolist() == [True, False]
        assert result.new_pos.tolist() == [10_003, -1]


class TestCycleAccounting:
    def test_breakdown_components_positive(self):
        site = small_site(3)
        result = IRUnit().run_site(site)
        cycles = result.cycles
        assert cycles.config == 8 + site.num_consensuses
        assert cycles.fill > 0
        assert cycles.compute > 0
        assert cycles.selector > 0
        assert cycles.writeback > 0
        assert cycles.total == (cycles.config + cycles.fill + cycles.compute
                                + cycles.selector + cycles.writeback)

    def test_fill_counts_blocks(self):
        site = RealignmentSite(
            chrom="1", start=0,
            consensuses=("A" * 64, "A" * 33),
            reads=("A" * 33,), quals=(np.full(33, 1, np.uint8),),
        )
        result = IRUnit().run_site(site)
        # consensus beats: 2 + 2; read bases: 2; quals: 2; records: 2 + 2.
        assert result.cycles.fill == (2 + 2) + 2 + 2 + 4

    def test_data_parallel_cuts_compute(self):
        site = small_site(5)
        scalar = IRUnit(UnitConfig(lanes=1)).run_site(site)
        wide = IRUnit(UnitConfig(lanes=32)).run_site(site)
        assert wide.cycles.compute < scalar.cycles.compute
        # Functional outputs identical.
        assert np.array_equal(scalar.new_pos, wide.new_pos)

    def test_pruning_cuts_compute(self):
        site = small_site(6)
        pruned = IRUnit(UnitConfig(prune=True)).run_site(site)
        unpruned = IRUnit(UnitConfig(prune=False)).run_site(site)
        assert pruned.cycles.compute < unpruned.cycles.compute
        assert pruned.comparisons < unpruned.comparisons
        assert unpruned.pruned_fraction == 0.0
